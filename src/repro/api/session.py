"""A warm, thread-safe verification session.

A :class:`Session` owns the per-process machinery that repeated queries
would otherwise rebuild per call — a :class:`repro.runtime.WorkerPool`
of warm worker processes, a resolved content-addressed result store and
a metrics registry — behind one object with one lifecycle.  The HTTP
service (:mod:`repro.service`) holds a session per pooled engine group,
the harness holds one per experiment run, and library callers use it as
a context manager.

Two execution paths serve a query:

* :meth:`run_reachability` — **inline**: the exploration runs on the
  calling thread, sharing the session's store (and, for sharded
  options, its warm expansion workers).  Thread-safe; many threads may
  query concurrently.
* :meth:`run_reachability_isolated` — **pooled**: the whole query runs
  on a warm worker process forked once per ``(system, graph)`` context
  and reused across calls.  A ``timeout`` is enforced by killing the
  worker (the session respawns it lazily and stays healthy), which is
  what gives the service its per-request wall-clock budget.  Verdicts
  are bit-identical to the inline path — the worker forces the
  single-shard engine, and execution shape never changes results.

Same-context isolated queries are serialised by a per-context lock
(one warm worker group serves one query at a time); queries over
different systems or graphs proceed concurrently.
"""

from __future__ import annotations

import base64
import pickle
import threading
from typing import Callable

from repro.api import query as api_query
from repro.api.options import ExplorationOptions
from repro.dms.system import DMS
from repro.errors import ModelCheckingError, QueryTimeoutError, SchedulerError, SessionError
from repro.fol.syntax import Query
from repro.modelcheck.result import ReachabilityResult
from repro.obs.metrics import resolve_metrics
from repro.runtime.pool import WorkerPool
from repro.runtime.scheduler import SweepScheduler
from repro.store.canonical import system_hash
from repro.store.service import resolve_store

__all__ = ["Session"]


def _encode_condition(condition: Query) -> str:
    """A pickle-round-trippable string form of a query condition.

    Isolated queries travel to their warm worker as a flat parameter
    dict of JSON scalars (the sweep scheduler's canonical domain), so a
    structured :class:`~repro.fol.syntax.Query` is shipped as a base64
    pickle and decoded worker-side.
    """
    return base64.b64encode(pickle.dumps(condition)).decode("ascii")


class Session:
    """One warm verification session (see the module docs).

    Args:
        options: default :class:`ExplorationOptions` for queries that do
            not pass their own.
        store: content-addressed result store — a path, a
            :class:`repro.store.ResultStore`, ``False`` to disable,
            ``None`` to consult ``REPRO_STORE``.  Resolved once, here,
            so every query of the session sees the same store.
        pool: a :class:`WorkerPool` to share; omitted, the session
            creates its own on first use (with ``use_processes=True``,
            so even one-worker query contexts fork — the process
            boundary is what makes isolated timeouts enforceable) and
            shuts it down on :meth:`close`.
        pool_workers: default worker count of an owned pool.
        metrics: a :class:`repro.obs.MetricsRegistry`; ``None`` resolves
            to the process-wide registry per operation.
    """

    def __init__(
        self,
        *,
        options: ExplorationOptions | None = None,
        store=None,
        pool: WorkerPool | None = None,
        pool_workers: int | None = None,
        metrics=None,
    ) -> None:
        self._options = options or ExplorationOptions()
        self._store = resolve_store(store)
        self._pool = pool
        self._owns_pool = pool is None
        self._pool_workers = pool_workers
        self._metrics = metrics
        self._guard = threading.Lock()
        self._context_locks: dict = {}
        self._closed = False

    # -- accessors -------------------------------------------------------------

    @property
    def options(self) -> ExplorationOptions:
        """The session's default exploration options."""
        return self._options

    @property
    def store(self):
        """The resolved result store (``None`` when disabled)."""
        return self._store

    @property
    def pool(self) -> WorkerPool:
        """The session's worker pool (an owned pool is created lazily)."""
        self._ensure_open()
        with self._guard:
            if self._pool is None:
                self._pool = WorkerPool(
                    workers=self._pool_workers, use_processes=True, metrics=self._metrics
                )
            return self._pool

    def warm_context_keys(self) -> tuple:
        """The keys of the currently warm pool contexts (diagnostics)."""
        with self._guard:
            return self._pool.keys() if self._pool is not None else ()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SessionError("the session has been closed")

    def _effective_store(self):
        # The store was resolved at construction; pass the resolved
        # object (or False) downward so queries never re-consult the
        # environment mid-session.
        return self._store if self._store is not None else False

    def _exploration_pool(self, options: ExplorationOptions):
        # Explorations borrow warm expansion workers only where the
        # engine would otherwise fork its own (sharded, single-node).
        if options.nodes == 1 and (options.shards > 1 or options.workers > 1):
            return self.pool
        return None

    def _lock_for(self, key) -> threading.Lock:
        with self._guard:
            lock = self._context_locks.get(key)
            if lock is None:
                lock = self._context_locks[key] = threading.Lock()
            return lock

    # -- queries ---------------------------------------------------------------

    def run_reachability(
        self,
        system: DMS,
        condition: Query | str,
        *,
        bound: int | None = None,
        options: ExplorationOptions | None = None,
        on_state: Callable[[object, int], None] | None = None,
    ) -> ReachabilityResult:
        """Run a reachability query inline, on the calling thread.

        Shares the session's store and (for sharded options) its warm
        expansion workers; see :func:`repro.api.run_reachability` for
        argument semantics.  Thread-safe.
        """
        self._ensure_open()
        effective = options or self._options
        registry = resolve_metrics(self._metrics)
        registry.counter("api_queries_total", path="inline").inc()
        with registry.histogram("api_query_seconds", path="inline").time():
            return api_query.run_reachability(
                system,
                condition,
                bound=bound,
                options=effective,
                pool=self._exploration_pool(effective),
                store=self._effective_store(),
                on_state=on_state,
            )

    def run_reachability_isolated(
        self,
        system: DMS,
        condition: Query | str,
        *,
        bound: int | None = None,
        options: ExplorationOptions | None = None,
        timeout: float | None = None,
    ) -> ReachabilityResult:
        """Run a reachability query on a warm pooled worker process.

        The worker is forked once per ``(system, graph)`` context and
        stays warm across calls; ``timeout`` seconds of wall clock kill
        it (:class:`~repro.errors.QueryTimeoutError`), after which the
        session respawns the worker lazily and keeps serving.  Verdicts
        are bit-identical to :meth:`run_reachability` — the worker
        forces the single-shard engine, and execution shape never
        changes results.  Where fork is unavailable the query degrades
        to the in-process fallback (``timeout`` is then unenforceable,
        matching the scheduler's sequential semantics).

        Best-first queries are inline-only: a heuristic callable cannot
        travel to a warm worker through the flat parameter dict.
        """
        self._ensure_open()
        effective = (options or self._options).replace(shards=1, workers=1, nodes=1)
        if effective.heuristic is not None:
            raise ModelCheckingError(
                "isolated queries cannot carry a search heuristic; "
                "use Session.run_reachability for best-first queries"
            )
        # Validate coordinator-side so a malformed condition raises the
        # same error type as the inline path instead of a wrapped
        # worker failure.
        api_query.instance_predicate(condition, system)
        key = ("api-query", system_hash(system), "dms" if bound is None else f"recency:{bound}")
        parameters = {
            "payload": "api-isolated",
            "condition_kind": "proposition" if isinstance(condition, str) else "query",
            "condition": condition if isinstance(condition, str) else _encode_condition(condition),
            "bound": bound,
            "max_depth": effective.max_depth,
            "max_configurations": effective.max_configurations,
            "max_steps": effective.max_steps,
            "strategy": effective.strategy,
            "retention": effective.retention,
        }
        registry = resolve_metrics(self._metrics)
        registry.counter("api_queries_total", path="isolated").inc()
        scheduler = SweepScheduler(
            parallel=1, pool=self.pool, timeout=timeout, context_key=key
        )
        with self._lock_for(key), registry.histogram("api_query_seconds", path="isolated").time():
            try:
                records = scheduler.run([parameters], self._isolated_measure(system))
            except SchedulerError as error:
                if "timeout:" in str(error):
                    registry.counter("api_query_timeouts_total").inc()
                    raise QueryTimeoutError(
                        f"reachability query exceeded its {timeout}s budget "
                        f"(worker killed; the session stays healthy)"
                    ) from error
                raise
        return records[0].measurements["result"]

    def _isolated_measure(self, system: DMS):
        """The per-context measure function isolated queries execute.

        Forked into the warm workers with ``system`` and the resolved
        store closed over (the store object is fork-safe); each call's
        condition and limits arrive through the parameter dict.
        """
        store = self._effective_store()

        def measure(parameters: dict) -> dict:
            condition = parameters["condition"]
            if parameters["condition_kind"] == "query":
                condition = pickle.loads(base64.b64decode(condition))
            options = ExplorationOptions(
                max_depth=parameters["max_depth"],
                max_configurations=parameters["max_configurations"],
                max_steps=parameters["max_steps"],
                strategy=parameters["strategy"],
                retention=parameters["retention"],
            )
            result = api_query.run_reachability(
                system, condition, bound=parameters["bound"], options=options, store=store
            )
            return {"result": result}

        return measure

    # -- convergence -----------------------------------------------------------

    def reachability_bound_sweep(
        self,
        system: DMS,
        condition: Query | str,
        bounds: tuple[int, ...] = (0, 1, 2, 3, 4),
        *,
        options: ExplorationOptions | None = None,
        on_point=None,
    ):
        """Sweep the recency bound, sharing the session's store and pool.

        Delegates to
        :func:`repro.modelcheck.convergence.reachability_bound_sweep`;
        ``on_point`` streams each completed bound (the service's
        convergence endpoint surfaces it as progress events).
        """
        self._ensure_open()
        from repro.modelcheck.convergence import reachability_bound_sweep

        effective = options or self._options
        return reachability_bound_sweep(
            system,
            condition,
            bounds,
            max_depth=effective.max_depth,
            strategy=effective.strategy,
            heuristic=effective.heuristic,
            retention=effective.retention,
            shards=effective.shards,
            workers=effective.workers,
            pool=self._exploration_pool(effective),
            shared_interning=effective.shared_interning,
            nodes=effective.nodes,
            transport=effective.transport,
            store=self._effective_store(),
            on_point=on_point,
        )

    def convergence_bound(
        self,
        system: DMS,
        condition: Query | str,
        max_bound: int = 8,
        *,
        options: ExplorationOptions | None = None,
    ) -> int | None:
        """The least bound whose verdict matches the unbounded query.

        Delegates to
        :func:`repro.modelcheck.convergence.convergence_bound` with the
        session's store and pool.
        """
        self._ensure_open()
        from repro.modelcheck.convergence import convergence_bound

        effective = options or self._options
        return convergence_bound(
            system,
            condition,
            max_bound=max_bound,
            max_depth=effective.max_depth,
            strategy=effective.strategy,
            heuristic=effective.heuristic,
            shards=effective.shards,
            workers=effective.workers,
            pool=self._exploration_pool(effective),
            shared_interning=effective.shared_interning,
            nodes=effective.nodes,
            transport=effective.transport,
            store=self._effective_store(),
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Shut down an owned pool and refuse further queries (idempotent).

        A pool passed in by the caller is left running — its lifecycle
        belongs to whoever created it.
        """
        with self._guard:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None and self._owns_pool:
            pool.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
