"""Result types of the model checkers.

Because the library explores finite fragments of infinite-state systems,
verdicts are three-valued: a property may be established to *hold* on all
explored runs, *fail* with a concrete counterexample prefix, or remain
*unknown* because the verdict could still change on unexplored
continuations (horizon effects).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

__all__ = ["Verdict", "ModelCheckingResult", "ReachabilityResult"]


class Verdict(Enum):
    """Three-valued outcome of a bounded verification question."""

    HOLDS = "holds"
    FAILS = "fails"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is Verdict.HOLDS


@dataclass
class ModelCheckingResult:
    """Outcome of checking an MSO-FO/FO-LTL property over bounded runs.

    Attributes:
        verdict: the three-valued verdict.
        counterexample: a run prefix (list of labels or a run object)
            witnessing failure, when available.
        runs_checked: number of run prefixes evaluated.
        depth: the exploration depth used.
        bound: the recency bound used (``None`` for unbounded semantics).
        details: free-form notes (e.g. whether enumeration was truncated).
    """

    verdict: Verdict
    counterexample: Optional[object] = None
    runs_checked: int = 0
    depth: int = 0
    bound: Optional[int] = None
    details: str = ""

    @property
    def holds(self) -> bool:
        """True when the verdict is :attr:`Verdict.HOLDS`."""
        return self.verdict is Verdict.HOLDS

    @property
    def fails(self) -> bool:
        """True when the verdict is :attr:`Verdict.FAILS`."""
        return self.verdict is Verdict.FAILS

    def __repr__(self) -> str:
        return (
            f"ModelCheckingResult({self.verdict.value}, runs={self.runs_checked}, "
            f"depth={self.depth}, b={self.bound})"
        )


@dataclass
class ReachabilityResult:
    """Outcome of a (propositional or query) reachability question.

    Attributes:
        reachable: the three-valued verdict (:attr:`Verdict.HOLDS` means
            a witness was found; :attr:`Verdict.FAILS` means exhaustively
            unreachable within the explored fragment *and* the fragment
            was complete; :attr:`Verdict.UNKNOWN` means not found but the
            exploration was truncated by its limits).
        witness: the witnessing run prefix when reachable.
        configurations_explored: number of configurations visited.
        edges_explored: number of transition edges generated.
        depth: exploration depth limit used.
        bound: the recency bound (``None`` for the unbounded semantics).
    """

    reachable: Verdict
    witness: Optional[object] = None
    configurations_explored: int = 0
    edges_explored: int = 0
    depth: int = 0
    bound: Optional[int] = None

    @property
    def found(self) -> bool:
        """True when a witness was found."""
        return self.reachable is Verdict.HOLDS

    def __repr__(self) -> str:
        return (
            f"ReachabilityResult({self.reachable.value}, configs={self.configurations_explored}, "
            f"depth={self.depth}, b={self.bound})"
        )
