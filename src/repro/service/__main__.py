"""``python -m repro.service`` — serve the verification service."""

import sys

from repro.service.cli import main

if __name__ == "__main__":
    sys.exit(main())
