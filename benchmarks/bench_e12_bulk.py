"""E12 — Appendix F.4: simulating bulk operations with standard actions."""

from repro.harness.experiments import experiment_e12_bulk
from repro.harness.reporting import print_experiment


def test_e12_bulk(benchmark, run_once):
    rows = run_once(benchmark, experiment_e12_bulk)
    print_experiment("E12", "Bulk-operation simulation (warehouse, Example F.4/F.5)", rows)
    assert all(row["bulk_flush_found"] for row in rows)
    assert all(row["protocol_steps"] == row["expected_protocol_steps"] for row in rows)
