"""E5 — Section 6.3.1/6.4: validity of encodings (phi_valid, word-level)."""

from repro.harness.experiments import experiment_e5_validity
from repro.harness.reporting import print_experiment


def test_e5_validity(benchmark, run_once):
    rows = run_once(benchmark, experiment_e5_validity)
    print_experiment("E5", "Validity of encodings vs mutated encodings", rows)
    assert rows[0]["rejected"] == 0
    assert rows[1]["accepted"] == 0
