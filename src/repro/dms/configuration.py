"""Configurations of the DMS configuration graph.

A configuration is a pair ``⟨I, H⟩`` of a database instance and a
history-set (paper, Section 3).  The recency-bounded semantics extends
configurations with a sequence numbering (Section 5); that variant lives
in :mod:`repro.recency.semantics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.database.domain import Value
from repro.database.instance import DatabaseInstance

__all__ = ["Configuration"]


@dataclass(frozen=True)
class Configuration:
    """A configuration ``⟨I, H⟩`` of the configuration graph ``C_S``.

    Attributes:
        instance: the current database instance ``I``.
        history: the history-set ``H`` of all values encountered so far.
    """

    instance: DatabaseInstance
    history: frozenset

    @classmethod
    def initial(cls, instance: DatabaseInstance) -> "Configuration":
        """The initial configuration ``⟨I0, ∅⟩``.

        The paper requires ``adom(I0) = ∅``; systems with a non-empty
        initial active domain (obtained e.g. by the constant-removal
        construction) start with ``H = adom(I0)`` instead, which this
        constructor also honours.
        """
        return cls(instance=instance, history=frozenset(instance.active_domain()))

    @property
    def active_domain(self) -> frozenset:
        """``adom(I)`` of the current instance."""
        return self.instance.active_domain()

    def extend_history(self, values: Iterable[Value]) -> frozenset:
        """The history-set after observing ``values``."""
        return self.history | frozenset(values)

    def is_consistent(self) -> bool:
        """Invariant check: the active domain is always contained in the history."""
        return self.active_domain <= self.history

    def __str__(self) -> str:
        return f"⟨{self.instance.pretty()}, |H|={len(self.history)}⟩"
