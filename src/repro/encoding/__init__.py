"""Nested-word encoding of b-bounded runs and the MSONW reduction (paper, Section 6.3–6.6)."""

from repro.encoding.alphabet import (
    HeadLetter,
    InitialLetter,
    PopLetter,
    PushLetter,
    encoding_alphabet,
    head_letters,
)
from repro.encoding.analyzer import EncodingAnalyzer, ValidityReport
from repro.encoding.blocks import Block, block_letters, parse_blocks
from repro.encoding.encoder import (
    block_for_step,
    encode_run,
    encode_symbolic_word,
    encoding_length,
)
from repro.encoding.mso_builder import (
    MSONWBuilder,
    valid_encoding_formula,
    valid_encoding_formula_size,
)
from repro.encoding.translate import (
    evaluate_specification_via_encoding,
    reduction_formula,
    reduction_formula_size,
    translate_guard,
    translate_specification,
)

__all__ = [
    "Block",
    "EncodingAnalyzer",
    "HeadLetter",
    "InitialLetter",
    "MSONWBuilder",
    "PopLetter",
    "PushLetter",
    "ValidityReport",
    "block_for_step",
    "block_letters",
    "encode_run",
    "encode_symbolic_word",
    "encoding_alphabet",
    "encoding_length",
    "evaluate_specification_via_encoding",
    "head_letters",
    "parse_blocks",
    "reduction_formula",
    "reduction_formula_size",
    "translate_guard",
    "translate_specification",
    "valid_encoding_formula",
    "valid_encoding_formula_size",
]
