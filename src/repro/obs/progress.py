"""Throttled live progress over the existing callback surface.

The engines already expose ``on_state(state, depth)`` and the sweep
scheduler ``on_point(record)``; a :class:`ProgressReporter` plugs into
both and emits at most one line per ``interval`` seconds::

    [progress] 12.4s states=48210 (3887/s) depth=5 frontier=1204 points=3/9

Lines go to **stderr** by default — the same contract as the harness's
``--stream`` output — so stdout stays clean for piping tables and JSON.
When constructed over an enabled :class:`~repro.obs.metrics.MetricsRegistry`
the line is enriched from live counters: frontier high-water, store hit
rate and worker respawns, without any extra plumbing into the layers
that own those numbers.

Throttling is allocation-free on the hot path: the state callback
increments two integers and checks the clock only every
``check_every`` calls, so wiring a reporter into a large exploration
costs a bounded fraction of the successor-enumeration work it reports
on (gated by the E20 bench).
"""

from __future__ import annotations

import sys
import time
from typing import Any, Callable

from repro.obs.metrics import MetricsRegistry, NullRegistry, resolve_metrics

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Emits throttled progress lines from ``on_state``/``on_point`` callbacks.

    Args:
        interval: minimum seconds between emitted lines.
        out: writable text stream (defaults to ``sys.stderr``, resolved
            at emit time so redirection in tests works).
        registry: a metrics registry to enrich lines from; defaults to
            the process-wide one (:func:`~repro.obs.metrics.resolve_metrics`).
        total_points: expected sweep size, rendered as ``points=k/n``.
        clock: monotonic clock, injectable for tests.
        check_every: state callbacks between clock checks (throttle
            granularity; the cost knob for very hot explorations).
    """

    def __init__(
        self,
        *,
        interval: float = 1.0,
        out=None,
        registry: MetricsRegistry | NullRegistry | None = None,
        total_points: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        check_every: int = 64,
    ) -> None:
        self._interval = interval
        self._out = out
        self._registry = resolve_metrics(registry)
        self._total_points = total_points
        self._clock = clock
        self._check_every = check_every
        self._states = 0
        self._points = 0
        self._depth = 0
        self._pending = 0
        self._started = clock()
        self._last_emit = self._started
        self.lines_emitted = 0

    # -- the callback surface --------------------------------------------------

    def on_state(self, state: Any, depth: int) -> None:
        """Engine ``on_state`` callback: count the discovery, maybe emit."""
        self._states += 1
        if depth > self._depth:
            self._depth = depth
        self._pending += 1
        if self._pending >= self._check_every:
            self._pending = 0
            self._maybe_emit()

    def on_point(self, record: Any) -> None:
        """Scheduler ``on_point`` callback: count the point, maybe emit."""
        self._points += 1
        self._maybe_emit()

    # -- emission --------------------------------------------------------------

    def _maybe_emit(self) -> None:
        now = self._clock()
        if now - self._last_emit >= self._interval:
            self._emit(now)

    def _emit(self, now: float) -> None:
        self._last_emit = now
        stream = self._out if self._out is not None else sys.stderr
        print(self.render(now), file=stream, flush=True)
        self.lines_emitted += 1

    def render(self, now: float | None = None) -> str:
        """The current progress line (without emitting it)."""
        now = self._clock() if now is None else now
        elapsed = max(now - self._started, 1e-9)
        parts = [f"[progress] {elapsed:.1f}s"]
        if self._states or not self._points:
            parts.append(f"states={self._states} ({self._states / elapsed:.0f}/s)")
            parts.append(f"depth={self._depth}")
        if self._points:
            if self._total_points:
                parts.append(f"points={self._points}/{self._total_points}")
            else:
                parts.append(f"points={self._points}")
        registry = self._registry
        if registry.enabled:
            frontier = registry.gauge_value("engine_frontier_states")
            if frontier:
                parts.append(f"frontier={frontier}")
            hits = registry.sum_counter("store_lookups_total", outcome="hit")
            misses = registry.sum_counter("store_lookups_total", outcome="miss")
            if hits or misses:
                parts.append(f"store-hit={hits / (hits + misses):.0%}")
            respawns = registry.sum_counter("pool_respawns_total")
            if respawns:
                parts.append(f"respawns={respawns}")
        return " ".join(parts)

    def final(self) -> str:
        """Emit (unthrottled) and return the closing summary line."""
        now = self._clock()
        line = self.render(now)
        stream = self._out if self._out is not None else sys.stderr
        print(line, file=stream, flush=True)
        self.lines_emitted += 1
        self._last_emit = now
        return line
