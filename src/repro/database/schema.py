"""Relational schemas.

A relational schema (paper, Section 2) is a finite set of relation names
``R_i/a_i``, each with a fixed arity.  Nullary relations play the role of
propositions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import ArityError, SchemaError, UnknownRelationError

__all__ = ["RelationSymbol", "Schema"]


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A relation name with its arity, written ``R/a`` in the paper.

    Attributes:
        name: the relation name (``"R"``).
        arity: the number of arguments; ``0`` denotes a proposition.
    """

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation name must be a non-empty string")
        if self.arity < 0:
            raise SchemaError(f"relation {self.name!r} has negative arity {self.arity}")

    @property
    def is_proposition(self) -> bool:
        """True when the relation is nullary (a proposition ``p/0``)."""
        return self.arity == 0

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """An immutable finite set of relation symbols with distinct names.

    The schema is the single source of truth for arities: facts, query
    atoms and action updates are validated against it.

    Example:
        >>> schema = Schema.of(("p", 0), ("R", 1), ("Q", 1))
        >>> schema.arity_of("R")
        1
    """

    __slots__ = ("_relations", "_by_name", "_hash")

    def __init__(self, relations: Iterable[RelationSymbol]) -> None:
        rels = tuple(sorted(set(relations)))
        by_name: dict[str, RelationSymbol] = {}
        for rel in rels:
            if rel.name in by_name:
                raise SchemaError(
                    f"relation name {rel.name!r} declared twice with arities "
                    f"{by_name[rel.name].arity} and {rel.arity}"
                )
            by_name[rel.name] = rel
        self._relations = rels
        self._by_name = by_name
        self._hash = hash(rels)

    # Never ship the randomisation-salted hash cache in a pickle.
    def __getstate__(self) -> tuple:
        return (self._relations,)

    def __setstate__(self, state: tuple) -> None:
        self.__init__(state[0])

    # -- constructors ---------------------------------------------------

    @classmethod
    def of(cls, *pairs: tuple[str, int]) -> "Schema":
        """Build a schema from ``(name, arity)`` pairs."""
        return cls(RelationSymbol(name, arity) for name, arity in pairs)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, int]) -> "Schema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in mapping.items())

    # -- queries ----------------------------------------------------------

    def __contains__(self, item: object) -> bool:
        if isinstance(item, RelationSymbol):
            return self._by_name.get(item.name) == item
        if isinstance(item, str):
            return item in self._by_name
        return False

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations)

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def relations(self) -> tuple[RelationSymbol, ...]:
        """All relation symbols, sorted by name then arity."""
        return self._relations

    @property
    def names(self) -> tuple[str, ...]:
        """All relation names."""
        return tuple(rel.name for rel in self._relations)

    @property
    def propositions(self) -> tuple[RelationSymbol, ...]:
        """The nullary relations of the schema."""
        return tuple(rel for rel in self._relations if rel.is_proposition)

    @property
    def non_nullary(self) -> tuple[RelationSymbol, ...]:
        """The relations of arity at least one."""
        return tuple(rel for rel in self._relations if not rel.is_proposition)

    @property
    def max_arity(self) -> int:
        """The maximum arity over all relations (0 for an empty schema)."""
        return max((rel.arity for rel in self._relations), default=0)

    def relation(self, name: str) -> RelationSymbol:
        """Return the symbol declared under ``name``.

        Raises:
            UnknownRelationError: if the name is not declared.
        """
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownRelationError(
                f"relation {name!r} is not declared in the schema {self}"
            ) from None

    def arity_of(self, name: str) -> int:
        """Return the arity declared for ``name``."""
        return self.relation(name).arity

    def check_atom(self, name: str, arguments: tuple) -> RelationSymbol:
        """Validate that ``name(arguments)`` is consistent with the schema.

        Returns the relation symbol on success.

        Raises:
            UnknownRelationError: unknown relation name.
            ArityError: wrong number of arguments.
        """
        rel = self.relation(name)
        if len(arguments) != rel.arity:
            raise ArityError(
                f"relation {rel} applied to {len(arguments)} argument(s): {arguments!r}"
            )
        return rel

    # -- construction of derived schemas ----------------------------------

    def extend(self, *pairs: tuple[str, int]) -> "Schema":
        """Return a new schema with additional relations."""
        return Schema(tuple(self._relations) + tuple(RelationSymbol(n, a) for n, a in pairs))

    def restrict(self, names: Iterable[str]) -> "Schema":
        """Return the sub-schema containing only the given relation names."""
        wanted = set(names)
        return Schema(rel for rel in self._relations if rel.name in wanted)

    def union(self, other: "Schema") -> "Schema":
        """Return the union of two schemas (names must agree on arity)."""
        return Schema(tuple(self._relations) + tuple(other._relations))

    # -- dunder ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        body = ", ".join(str(rel) for rel in self._relations)
        return f"Schema({{{body}}})"

    __str__ = __repr__
