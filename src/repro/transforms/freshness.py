"""Weakening the freshness requirement for input values (Appendix F.3).

An *arbitrary-input* DMS allows input variables to be bound to any value,
fresh or not.  :func:`weaken_freshness` produces an equivalent *standard*
DMS over a schema extended with a unary history relation ``Hist``: every
arbitrary-input action with inputs ``i⃗`` is split into ``2^|i⃗|``
standard actions, one per subset of inputs bound to historical values
(looked up in ``Hist``), the remaining inputs staying fresh and being
recorded into ``Hist``.
"""

from __future__ import annotations

from itertools import combinations

from repro.database.instance import Fact
from repro.database.schema import Schema
from repro.dms.action import Action
from repro.dms.system import DMS
from repro.fol.syntax import And, Atom, Query

__all__ = ["HISTORY_RELATION", "weaken_freshness", "expand_arbitrary_inputs"]

#: Name of the accessory unary relation storing every value seen so far.
HISTORY_RELATION = "Hist"


def _extended_schema(schema: Schema) -> Schema:
    if HISTORY_RELATION in schema:
        return schema
    return schema.extend((HISTORY_RELATION, 1))


def expand_arbitrary_inputs(action: Action, schema: Schema) -> tuple[Action, ...]:
    """The ``2^|α·new|`` standard actions simulating an arbitrary-input action."""
    extended = _extended_schema(schema)
    inputs = action.fresh
    variants = []
    for size in range(len(inputs) + 1):
        for historical in combinations(inputs, size):
            historical_set = set(historical)
            fresh = tuple(v for v in inputs if v not in historical_set)
            guard: Query = action.guard
            for variable in historical:
                guard = And(guard, Atom(HISTORY_RELATION, (variable,)))
            additions = set(action.additions.facts)
            for variable in fresh:
                additions.add(Fact(HISTORY_RELATION, (variable,)))
            suffix = "_".join(historical) if historical else "allfresh"
            variants.append(
                Action.create(
                    name=f"{action.name}__h_{suffix}",
                    schema=extended,
                    parameters=action.parameters + tuple(historical),
                    fresh=fresh,
                    guard=guard,
                    delete=list(action.deletions.facts),
                    add=sorted(additions, key=str),
                    strict=action.strict,
                )
            )
    return tuple(variants)


def weaken_freshness(system: DMS) -> DMS:
    """The standard DMS simulating ``system`` read as an arbitrary-input DMS.

    Every value injected by a fresh input of the original system is also
    recorded in ``Hist``, so later actions may re-select it through the
    historical variants.
    """
    schema = _extended_schema(system.schema)
    actions = []
    for action in system.actions:
        actions.extend(expand_arbitrary_inputs(action, system.schema))
    initial = system.initial_instance.with_schema(schema)
    return DMS.create(
        schema=schema,
        initial_instance=initial,
        actions=actions,
        constraints=system.constraints,
        name=f"fresh({system.name})",
        require_empty_initial_adom=system.require_empty_initial_adom,
    )
