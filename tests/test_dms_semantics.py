"""Tests for the execution semantics of DMSs (paper, Section 3)."""

import pytest

from repro.casestudies.simple import figure_1_expected_instances
from repro.dms.graph import ConfigurationGraphExplorer, ExplorationLimits, iterate_runs
from repro.dms.semantics import (
    apply_action,
    enumerate_guard_answers,
    enumerate_successors,
    execute_labels,
    initial_configuration,
    is_instantiating_substitution,
    successor_configuration,
)
from repro.errors import ExecutionError


def test_initial_configuration(example31):
    configuration = initial_configuration(example31)
    assert configuration.history == frozenset()
    assert configuration.instance.holds_proposition("p")
    assert configuration.is_consistent()


def test_instantiating_substitution_conditions(example31):
    configuration = initial_configuration(example31)
    alpha = example31.action("alpha")
    sigma = {"v1": "e1", "v2": "e2", "v3": "e3"}
    assert is_instantiating_substitution(alpha, configuration, sigma)
    # Fresh variables must be pairwise distinct.
    assert not is_instantiating_substitution(
        alpha, configuration, {"v1": "e1", "v2": "e1", "v3": "e3"}
    )
    after = apply_action(alpha, configuration, sigma)
    beta = example31.action("beta")
    # Action parameters must come from the active domain.
    assert not is_instantiating_substitution(
        beta, after, {"u": "e99", "v1": "e4", "v2": "e5"}
    )
    # Fresh values must be history-fresh.
    assert not is_instantiating_substitution(
        beta, after, {"u": "e1", "v1": "e1", "v2": "e5"}
    )
    assert is_instantiating_substitution(beta, after, {"u": "e1", "v1": "e4", "v2": "e5"})


def test_apply_action_checks(example31):
    configuration = initial_configuration(example31)
    beta = example31.action("beta")
    with pytest.raises(ExecutionError):
        apply_action(beta, configuration, {"u": "e1", "v1": "e2", "v2": "e3"})


def test_successor_configuration_returns_none_when_blocked(example31):
    configuration = initial_configuration(example31)
    beta = example31.action("beta")
    assert successor_configuration(beta, configuration, {"u": "e1", "v1": "e2", "v2": "e3"}) is None


def test_figure1_run_reproduced(example31, figure1_labels):
    run = execute_labels(example31, figure1_labels)
    expected = figure_1_expected_instances()
    assert len(run.configurations()) == len(expected)
    for configuration, expectation in zip(run.configurations(), expected):
        instance = configuration.instance
        assert instance.holds_proposition("p") == expectation["p"]
        assert {row[0] for row in instance.relation_rows("R")} == expectation["R"]
        assert {row[0] for row in instance.relation_rows("Q")} == expectation["Q"]


def test_history_grows_monotonically(example31, figure1_labels):
    run = execute_labels(example31, figure1_labels)
    histories = [conf.history for conf in run.configurations()]
    for previous, current in zip(histories, histories[1:]):
        assert previous <= current
    assert len(histories[-1]) == 11


def test_deleted_elements_never_return(example31, figure1_labels):
    """The history-fresh policy: once deleted, an element never re-enters adom."""
    run = execute_labels(example31, figure1_labels)
    seen_then_gone: set = set()
    for configuration in run.configurations():
        adom = configuration.instance.active_domain()
        assert not (seen_then_gone & adom)
        seen_then_gone |= configuration.history - adom
    assert "e2" in seen_then_gone


def test_enumerate_guard_answers(example31, figure1_labels):
    run = execute_labels(example31, figure1_labels)
    instance_after_alpha = run.configurations()[1].instance
    beta = example31.action("beta")
    answers = list(enumerate_guard_answers(beta, instance_after_alpha))
    assert {answer["u"] for answer in answers} == {"e1", "e2"}


def test_enumerate_successors_canonical_fresh_values(example31):
    configuration = initial_configuration(example31)
    steps = list(enumerate_successors(example31, configuration))
    assert len(steps) == 1
    step = steps[0]
    assert step.action.name == "alpha"
    assert step.fresh_values() == ("e1", "e2", "e3")


def test_execute_labels_invalid_sequence_raises(example31):
    with pytest.raises(ExecutionError):
        execute_labels(example31, [("beta", {"u": "e1", "v1": "e2", "v2": "e3"})])


def test_explorer_bounded_exploration(example31):
    explorer = ConfigurationGraphExplorer(example31, ExplorationLimits(max_depth=2))
    result = explorer.explore()
    assert result.configuration_count > 1
    assert result.depth_reached <= 2
    assert result.edge_count >= result.configuration_count - 1


def test_explorer_find_configuration(toy_counter_system):
    explorer = ConfigurationGraphExplorer(toy_counter_system, ExplorationLimits(max_depth=3))
    witness, stats = explorer.find_configuration(
        lambda conf: len(conf.instance.relation_rows("token")) >= 2
    )
    assert witness is not None
    assert len(witness.steps) == 2


def test_iterate_runs_enumeration(toy_counter_system):
    runs = list(iterate_runs(toy_counter_system, depth=2))
    assert runs
    assert all(len(run.steps) <= 2 for run in runs)
    labels = {tuple(step.action.name for step in run.steps) for run in runs}
    assert ("produce", "consume") in labels


def test_run_projection_and_gadom(example31, figure1_labels):
    extended = execute_labels(example31, figure1_labels)
    run = extended.to_run()
    assert len(run) == 9
    assert run.global_active_domain() == frozenset(f"e{i}" for i in range(1, 12))
    assert extended.labels()[0][0] == "alpha"
