"""Sharded, work-stealing exploration with merged results.

The single-process :class:`~repro.search.engine.Engine` expands one
state at a time; on the large case studies almost all of that time is
spent in *successor enumeration* (guard evaluation over the database
instance, instance construction).  This module parallelises exactly that
hot loop while keeping the results **bit-identical** to a single-shard
breadth-first exploration:

* interned configuration ids are hash-partitioned across ``shards``
  shards — each shard owns the states whose structural hash falls into
  its partition and keeps **its own frontier**
  (:class:`ShardFrontiers`);
* exploration is *level-synchronous*: all states at depth ``d`` are
  expanded before any state at depth ``d + 1``, in batches
  (``batch_size`` states per expansion task);
* when a shard's frontier drains before the level is finished it
  **steals** the tail half of the fullest remaining frontier, so batch
  composition stays balanced across shards even under skewed hash
  partitions (dispatch to actual worker processes is additionally
  load-balanced by the pool handing batches to whichever worker is
  free);
* successor enumeration runs on an expansion backend — a
  ``multiprocessing`` process pool (:class:`ProcessExpansionBackend`,
  fork start method) or a deterministic single-process fallback
  (:class:`SerialExpansionBackend`) that exercises the same shard
  queues and stealing policy;
* the coordinator then **replays** the expansions in global discovery
  (interned-id) order — the exact order in which single-shard BFS pops
  its FIFO frontier — interning targets, recording parent links and
  checking limits after every generated edge.

Because interning, parent assignment, limit checks and predicate
evaluation all happen in the deterministic replay, the merged result is
bit-identical to the single-shard engine's on the visited set, edge
counts, truncation flags, parent links and reconstructed witnesses, for
every retention mode and worker count.  The only speculative work is
successor enumeration past a limit, which the replay discards.

Each shard accumulates its discoveries in its own partial
:class:`~repro.search.engine.SearchResult` (states it owns, parent links
of those states, edges generated from them); the public entry points
fold the partials with the associative
:meth:`~repro.search.engine.SearchResult.merge`, which re-keys parent
links across shard boundaries and ORs truncation flags — any truncated
shard makes the merged exploration truncated, which the reachability
layer maps to ``UNKNOWN`` (never ``FAILS``).

Sharding is inherently level-synchronous, so only the ``"bfs"`` frontier
strategy is supported; requesting ``"dfs"``/``"best-first"`` with more
than one shard or worker raises :class:`~repro.errors.SearchError`.

Expansion backends live for the **engine's lifetime** (not one fork
cycle per ``explore()`` call), and an engine given a
:class:`repro.runtime.WorkerPool` borrows *warm* workers that survive
the engine itself — see :mod:`repro.runtime` for the pool, the sweep
scheduler and checkpointed execution built on top of this module.
"""

from __future__ import annotations

import multiprocessing
import os
import weakref
from collections import deque
from time import perf_counter
from typing import Any, Callable, Iterable

from repro.errors import SearchError
from repro.obs.metrics import resolve_metrics
from repro.obs.trace import get_tracer
from repro.search.engine import (
    RETAIN_COUNTS,
    RETAIN_FULL,
    RETENTION_MODES,
    SearchLimits,
    SearchResult,
)
from repro.search.interning import InternTable
from repro.search.shm_interning import (
    EncodedExpansion,
    SharedInternTable,
    SharedStateStore,
    attached_store,
    set_process_writer_slot,
    shared_memory_available,
)

__all__ = [
    "ShardFrontiers",
    "ShardedEngine",
    "SerialExpansionBackend",
    "ProcessExpansionBackend",
    "shard_of",
    "process_backend_available",
    "usable_cpu_count",
]

DEFAULT_BATCH_SIZE = 16


def shard_of(state: Any, shards: int) -> int:
    """The shard owning ``state``: its structural hash modulo ``shards``.

    Ownership only balances work across shards — the replay makes the
    exploration result independent of the partition, so per-process hash
    randomisation is harmless.
    """
    return hash(state) % shards


def process_backend_available() -> bool:
    """Whether the multiprocessing backend can run *here*.

    The process backend inherits the successor closure via the ``fork``
    start method, so it is available exactly where fork is (POSIX) —
    and where the current process may have children at all: inside a
    daemonic pool worker (e.g. a sweep point running on the runtime's
    scheduler) Python forbids spawning processes, so nested
    explorations silently use the deterministic serial backend instead.
    Results are bit-identical either way; only parallelism is affected,
    and the outer level already provides it in the nested case.
    """
    if multiprocessing.current_process().daemon:
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def usable_cpu_count() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


class ShardFrontiers:
    """Per-shard FIFO frontiers with tail-half work stealing.

    One instance holds the frontiers of a single exploration level: the
    coordinator pushes every ``(state_id, state)`` entry onto its owning
    shard's queue, and expansion workers drain the queues in batches.
    :meth:`take_batch` serves a shard from its own queue first; when that
    queue has drained it steals the tail half of the fullest remaining
    queue (the classic work-stealing split: the victim keeps the head it
    is about to process, the thief takes the colder tail).

    ``steals`` counts the steal operations of this level; the engine
    reads it after the backend drains the frontiers and flushes it into
    the metrics registry (stealing happens coordinator-side for every
    backend, so no counter crosses a process boundary).
    """

    __slots__ = ("_queues", "steals")

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise SearchError("the number of shards must be positive")
        self._queues: list[deque] = [deque() for _ in range(shards)]
        self.steals = 0

    @property
    def shards(self) -> int:
        """Number of shard queues."""
        return len(self._queues)

    def push(self, shard: int, entry: Any) -> None:
        """Append ``entry`` to ``shard``'s frontier."""
        self._queues[shard].append(entry)

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues)

    def __bool__(self) -> bool:
        return any(self._queues)

    def take_batch(self, shard: int, size: int) -> list:
        """Up to ``size`` entries for ``shard``, stealing when it drained.

        Returns ``[]`` only when every frontier is empty.
        """
        queue = self._queues[shard]
        if not queue:
            victim = self._fullest()
            if victim is None:
                return []
            self._steal(victim, into=shard)
        batch = []
        while queue and len(batch) < size:
            batch.append(queue.popleft())
        return batch

    def _fullest(self) -> int | None:
        """The index of the fullest non-empty queue (smallest index on ties)."""
        best: int | None = None
        for index, queue in enumerate(self._queues):
            if queue and (best is None or len(queue) > len(self._queues[best])):
                best = index
        return best

    def _steal(self, victim: int, into: int) -> None:
        """Move the tail half (at least one entry) of ``victim`` to ``into``."""
        self.steals += 1
        source = self._queues[victim]
        count = max(1, len(source) // 2)
        stolen = [source.pop() for _ in range(count)]
        stolen.reverse()  # preserve the tail segment's original order
        self._queues[into].extend(stolen)


# -- expansion backends ------------------------------------------------------------


def _drain_batches(frontiers: ShardFrontiers, batch_size: int) -> list[list]:
    """Materialise all expansion batches of a level, round-robin with stealing.

    A cursor cycles over the shards the way a pool of per-shard workers
    would: each shard takes batches from its own frontier and steals from
    the fullest one once its own has drained.
    """
    batches: list[list] = []
    shard = 0
    shards = frontiers.shards
    while frontiers:
        batch = frontiers.take_batch(shard, batch_size)
        shard = (shard + 1) % shards
        if batch:
            batches.append(batch)
    return batches


class SerialExpansionBackend:
    """Deterministic single-process expansion (the fallback backend).

    Runs the exact same shard-queue draining and stealing schedule as the
    process backend, then enumerates successors inline.
    """

    name = "serial"

    def __init__(self, successors: Callable[[Any], Iterable]) -> None:
        self._successors = successors

    def expand(self, frontiers: ShardFrontiers, batch_size: int) -> dict:
        """Expand every queued state; returns ``{state_id: [edges]}``."""
        successors = self._successors
        expansions: dict = {}
        for batch in _drain_batches(frontiers, batch_size):
            for state_id, state in batch:
                expansions[state_id] = list(successors(state))
        return expansions

    def close(self) -> None:
        """Nothing to release."""


def expand_shared_batch(
    successors: Callable[[Any], Iterable], batch: list, store_name: str
) -> EncodedExpansion:
    """Expand one id-only batch against the shared state store.

    Entries are ``(state_id, shared_id, inline_state)`` — ``shared_id``
    resolves through the per-process store cache (each configuration is
    deserialized at most once per process); ``inline_state`` carries the
    rare state the slab could not hold.  Freshly generated targets are
    interned into this worker's slot, so the returned
    :class:`EncodedExpansion` ships edges with *ids* in place of source
    and target configurations.
    """
    store = attached_store(store_name)
    results = []
    for state_id, shared_id, inline in batch:
        if shared_id is not None:
            state = store.get(shared_id)
        else:
            state = inline
            store.put(state)  # give the return trip an id for it too
        edges = list(successors(state))
        for edge in edges:
            store.put(edge.target)
        results.append((state_id, edges))
    return EncodedExpansion(store.dumps(results))


_WORKER_SUCCESSORS: Callable[[Any], Iterable] | None = None
_WORKER_STORE_NAME: str | None = None


def _initialise_worker(
    successors: Callable[[Any], Iterable],
    store_name: str | None = None,
    slot_counter=None,
) -> None:
    """Pool initializer: remember the successor function in the worker.

    With a shared state store, each worker additionally claims the next
    writer slot (the counter and its lock are inherited through fork).
    """
    global _WORKER_SUCCESSORS, _WORKER_STORE_NAME
    _WORKER_SUCCESSORS = successors
    _WORKER_STORE_NAME = store_name
    if slot_counter is not None:
        with slot_counter.get_lock():
            slot_counter.value += 1
            slot = slot_counter.value
        set_process_writer_slot(slot)


def _expand_batch(batch: list):
    """Expand one batch in a worker; returns ``[(state_id, [edges]), ...]``.

    Id-only batches (3-tuple entries) are expanded against the shared
    store and return an :class:`EncodedExpansion` blob instead.
    """
    assert _WORKER_SUCCESSORS is not None, "worker pool was not initialised"
    if batch and len(batch[0]) == 3:
        assert _WORKER_STORE_NAME is not None, "id-only batch without a shared store"
        return expand_shared_batch(_WORKER_SUCCESSORS, batch, _WORKER_STORE_NAME)
    return [(state_id, list(_WORKER_SUCCESSORS(state))) for state_id, state in batch]


def _terminate_pool(pool, store=None) -> None:
    """GC safety net for pools whose owning backend was never closed.

    Also unlinks the backend-owned shared state store: the per-process
    attach registry keeps the owner view alive, so the store's own
    finalizer can only fire through the backend's.
    """
    try:
        pool.terminate()
    except Exception:  # noqa: BLE001 - finalizers must never raise
        pass
    if store is not None:
        try:
            store.destroy()
        except Exception:  # noqa: BLE001 - finalizers must never raise
            pass


class ProcessExpansionBackend:
    """Batch successor expansion on a fork-based ``multiprocessing`` pool.

    The successor closure is inherited by the workers through fork (no
    pickling of the system), while the states shipped out and the edges
    shipped back cross process boundaries pickled.  Expansion results
    arrive unordered; determinism is restored by the coordinator replay.

    The pool lives for the backend's lifetime — one fork cycle serves
    every exploration of the owning engine, not one per ``explore()``
    call.  A backend dropped without :meth:`close` is cleaned up by a GC
    finalizer.  For *cross-engine* reuse, lease backends from a
    :class:`repro.runtime.WorkerPool` instead.

    With ``store`` (a :class:`~repro.search.shm_interning.SharedStateStore`
    owned by this backend), expansion traffic is id-only: the
    coordinator ships ``(state_id, shared_id)`` entries and workers
    answer :class:`EncodedExpansion` blobs.  The store is destroyed
    (segment unlinked) on :meth:`close`.
    """

    name = "process"

    def __init__(
        self,
        successors: Callable[[Any], Iterable],
        workers: int,
        store: SharedStateStore | None = None,
    ) -> None:
        if not process_backend_available():
            raise SearchError(
                "the multiprocessing expansion backend requires the 'fork' start method"
            )
        context = multiprocessing.get_context("fork")
        self.shared_store = store
        slot_counter = context.Value("i", 0) if store is not None else None
        self._pool = context.Pool(
            processes=workers,
            initializer=_initialise_worker,
            initargs=(successors, store.name if store is not None else None, slot_counter),
        )
        self._finalizer = weakref.finalize(self, _terminate_pool, self._pool, store)

    def worker_pids(self) -> tuple[int, ...]:
        """The pids of the pool's worker processes (sorted).

        Successive explorations through the same backend reuse these
        exact workers — the regression surface for the per-call
        pool-rebuild bug.
        """
        return tuple(sorted(worker.pid for worker in self._pool._pool))

    def expand(self, frontiers: ShardFrontiers, batch_size: int) -> dict:
        """Expand every queued state across the pool; ``{state_id: [edges]}``."""
        batches = _drain_batches(frontiers, batch_size)
        expansions: dict = {}
        for chunk in self._pool.imap_unordered(_expand_batch, batches):
            if isinstance(chunk, EncodedExpansion):
                chunk = self.shared_store.loads(chunk.payload)
            expansions.update(chunk)
        return expansions

    def close(self) -> None:
        """Shut the worker pool down (idempotent); unlinks an owned store."""
        if self._finalizer.detach() is not None:
            self._pool.close()
            self._pool.join()
            if self.shared_store is not None:
                self.shared_store.destroy()


def _flush_level(record, new_states: int, level_edges: int, replay_seconds: float) -> None:
    """Flush one replayed level's counters into the registry.

    Called at each level barrier (and before an early predicate/limit
    return), so the folded ``engine_states_total``/``engine_edges_total``
    counters reconcile exactly with the merged result — the E20 bench
    gates that identity.  A "duplicate" is an edge whose target was
    already interned.
    """
    record.counter("engine_states_total", kind="interned").inc(new_states)
    duplicates = level_edges - new_states
    if duplicates > 0:
        record.counter("engine_states_total", kind="duplicate").inc(duplicates)
    record.counter("engine_edges_total").inc(level_edges)
    record.histogram("sharded_level_seconds", phase="replay").observe(replay_seconds)


# -- the sharded engine ------------------------------------------------------------


class ShardedEngine:
    """Level-synchronous sharded exploration (see module docs).

    Drop-in for :class:`~repro.search.engine.Engine` on the ``"bfs"``
    strategy: :meth:`explore` and :meth:`search` return results
    bit-identical to the single-shard engine's, while successor
    enumeration is batched across shard workers.

    Args:
        successors: deterministic successor function
            ``state -> iterable of edges`` (objects with
            ``.source``/``.target``).  Must be pure — the engine may
            enumerate successors speculatively past a limit.
        limits: depth/state/edge limits (:class:`SearchLimits`).
        shards: number of hash partitions / per-level frontiers.
        workers: expansion processes; ``1`` selects the serial backend.
        retention: edge-retention mode (as for :class:`Engine`).
        strategy: must be ``"bfs"`` — sharding is level-synchronous.
        batch_size: states per expansion task.
        pool: a :class:`repro.runtime.WorkerPool` to borrow warm
            expansion workers from.  Leased workers survive the engine
            (they stay warm in the pool); without a pool the engine owns
            its backend, created once on first use and reused by every
            later exploration until :meth:`close`.
        pool_key: worker-pool context key identifying the successor
            function's semantics (defaults to the callable's identity).
            Engines sharing a key share the same warm workers.
        shared_interning: route expansion traffic through a
            shared-memory state store (:mod:`repro.search.shm_interning`)
            so workers exchange intern ids instead of pickled states.
            Default ``None`` (auto): on whenever expansion runs on
            worker *processes* — pooled or engine-owned — and shared
            memory is available; always off for the in-process serial
            fallback.  ``True`` requests it (silently degrading where
            impossible), ``False`` forces classic pickled traffic.
            Results are bit-identical either way.
        nodes: with ``nodes > 1`` the exploration runs **two-level
            distributed** (:mod:`repro.distributed`): each of ``nodes``
            node agents owns the intern table and partial result of its
            hash-partition, ``shards``/``workers``/``shared_interning``
            become each node's *local* configuration, and the merged
            result stays bit-identical to the single-shard engine's.  A
            ``pool=`` is ignored in this mode (node agents own their
            expansion workers).
        transport: how node agents are reached when ``nodes > 1`` —
            ``None``/``"tcp"`` forks a localhost TCP cluster owned by
            the engine; a :class:`repro.distributed.Coordinator` with
            already-accepted agents is borrowed instead (and left
            connected on :meth:`close`).
        context: a picklable
            :class:`~repro.distributed.context.ExplorationContext`
            shipped to *external* node agents in their lease (the
            localhost launcher inherits the successor closure through
            fork and needs none).
        metrics: a :class:`repro.obs.MetricsRegistry`; ``None`` (the
            default) resolves to the process-wide registry per call —
            the no-op null registry unless one was installed, so the
            uninstrumented path costs nothing.  Per-level counters
            (interned vs duplicate states, edges, steals, expand/replay
            timings) are flushed at level barriers, never per edge.

    The expansion backend lives for the **engine's lifetime**: repeated
    :meth:`explore`/:meth:`search` calls reuse the same worker
    processes instead of forking a fresh pool per call.  The engine is
    a context manager; ``close()`` releases a pool lease or shuts an
    owned backend down (a GC finalizer backstops forgotten engines).
    """

    __slots__ = (
        "_successors",
        "_limits",
        "_shards",
        "_workers",
        "_retention",
        "_batch_size",
        "_pool",
        "_pool_key",
        "_shared_interning",
        "_backend_instance",
        "_nodes",
        "_transport",
        "_context",
        "_distributed_instance",
        "_metrics",
    )

    def __init__(
        self,
        successors: Callable[[Any], Iterable],
        *,
        limits: SearchLimits | None = None,
        shards: int = 1,
        workers: int = 1,
        retention: str = RETAIN_FULL,
        strategy: str = "bfs",
        batch_size: int = DEFAULT_BATCH_SIZE,
        pool=None,
        pool_key: Any = None,
        shared_interning: bool | None = None,
        nodes: int = 1,
        transport: Any = None,
        context: Any = None,
        metrics=None,
    ) -> None:
        if retention not in RETENTION_MODES:
            raise SearchError(
                f"unknown edge-retention mode {retention!r}; expected one of {RETENTION_MODES}"
            )
        if strategy != "bfs":
            raise SearchError(
                "sharded exploration is level-synchronous and supports only the 'bfs' "
                f"strategy (got {strategy!r})"
            )
        if shards < 1 or workers < 1:
            raise SearchError("shards and workers must both be positive")
        if nodes < 1:
            raise SearchError("the node count must be positive")
        if batch_size < 1:
            raise SearchError("batch_size must be positive")
        self._successors = successors
        self._limits = limits or SearchLimits()
        self._shards = shards
        self._workers = workers
        self._retention = retention
        self._batch_size = batch_size
        self._pool = pool
        self._pool_key = pool_key
        self._shared_interning = shared_interning
        self._backend_instance = None
        self._nodes = nodes
        self._transport = transport
        self._context = context
        self._distributed_instance = None
        self._metrics = metrics

    @property
    def limits(self) -> SearchLimits:
        """The exploration limits."""
        return self._limits

    @property
    def shards(self) -> int:
        """Number of hash partitions."""
        return self._shards

    @property
    def workers(self) -> int:
        """Number of expansion workers."""
        return self._workers

    @property
    def retention(self) -> str:
        """The edge-retention mode."""
        return self._retention

    @property
    def strategy(self) -> str:
        """Always ``"bfs"`` (level-synchronous sharding)."""
        return "bfs"

    @property
    def nodes(self) -> int:
        """Number of distributed node agents (1 = this process only)."""
        return self._nodes

    @property
    def backend_name(self) -> str:
        """The expansion backend :meth:`explore` will use."""
        if self._distributed_active():
            return "distributed"
        if self._backend_instance is not None:
            return self._backend_instance.name
        if self._pool is not None:
            return "pooled" if self._pool.uses_processes(self._workers) else "pooled-serial"
        if self._workers > 1 and process_backend_available():
            return ProcessExpansionBackend.name
        return SerialExpansionBackend.name

    @property
    def shared_interning(self) -> bool:
        """Whether expansion traffic is (or will be) id-only.

        Reports the *effective* state once a backend exists; before
        that, the auto policy's prediction: on for process-backed
        expansion with shared memory available, off otherwise.  For a
        distributed engine this is the per-*node* prediction (each node
        decides exactly as a node-local engine would).
        """
        if self._distributed_active():
            return (
                self._shared_interning is not False
                and shared_memory_available()
                and self._workers > 1
                and process_backend_available()
            )
        backend = self._backend_instance
        if backend is not None:
            return getattr(backend, "shared_store", None) is not None
        if self._shared_interning is False or not shared_memory_available():
            return False
        if self._pool is not None:
            return self._pool.uses_processes(self._workers)
        return self._workers > 1 and process_backend_available()

    def _backend(self):
        """The engine's expansion backend, created once and then reused.

        Hoisting the backend to engine lifetime is what keeps worker
        processes warm across successive explorations; previously a
        fresh pool was forked and torn down inside every ``explore()``.
        """
        if self._backend_instance is None:
            if self._pool is not None:
                self._backend_instance = self._pool.expansion_backend(
                    self._successors,
                    key=self._pool_key,
                    workers=self._workers,
                    shared_interning=self._shared_interning,
                )
            elif self._workers > 1 and process_backend_available():
                store = None
                if self._shared_interning is not False:
                    # Slot 0 is the coordinator, one slot per worker,
                    # plus headroom: mp.Pool *does* respawn crashed
                    # workers, and each replacement claims a fresh slot
                    # from the initializer counter (an out-of-slots
                    # replacement degrades to inline traffic, which is
                    # slower, never wrong).
                    store = SharedStateStore.create(slots=self._workers + 4)
                self._backend_instance = ProcessExpansionBackend(
                    self._successors, self._workers, store=store
                )
            else:
                self._backend_instance = SerialExpansionBackend(self._successors)
        return self._backend_instance

    def _distributed_active(self) -> bool:
        """Whether explorations actually run on node agents.

        ``nodes > 1`` with the default localhost transport needs the
        ``fork`` start method to launch agents; where it is unavailable
        (or inside a daemonic sweep worker, which may not have children)
        the engine silently falls back to the single-node path — the
        replay makes results bit-identical either way, exactly as for
        the serial expansion fallback.  An external coordinator's agents
        already exist, so that path never degrades.
        """
        if self._nodes <= 1:
            return False
        if self._transport not in (None, "tcp"):
            return True
        return process_backend_available()

    def _distributed(self):
        """The two-level distributed engine (created once, then reused).

        Like the expansion backend, it is engine-lifetime state: the
        localhost cluster (or the borrowed coordinator's lease) stays
        warm across successive explorations until :meth:`close`.
        """
        if self._distributed_instance is None:
            from repro.distributed.coordinator import DistributedEngine

            self._distributed_instance = DistributedEngine(
                self._successors,
                nodes=self._nodes,
                limits=self._limits,
                retention=self._retention,
                local_shards=self._shards,
                local_workers=self._workers,
                batch_size=self._batch_size,
                shared_interning=self._shared_interning,
                transport=self._transport,
                context=self._context,
                metrics=self._metrics,
            )
        return self._distributed_instance

    def close(self) -> None:
        """Release the expansion backend (idempotent).

        An owned process pool is shut down; a pool lease is released
        with its workers left warm; an owned distributed cluster is torn
        down (a borrowed coordinator stays connected).  The engine may
        be used again — the next exploration simply acquires a fresh
        backend or cluster.
        """
        backend, self._backend_instance = self._backend_instance, None
        if backend is not None:
            backend.close()
        distributed, self._distributed_instance = self._distributed_instance, None
        if distributed is not None:
            distributed.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- public entry points ---------------------------------------------------

    def explore(
        self,
        initial: Any,
        on_state: Callable[[Any, int], None] | None = None,
    ) -> SearchResult:
        """Explore every reachable state within the limits (merged result).

        ``on_state`` fires in global discovery order, exactly as under
        the single-shard engine.
        """
        if self._distributed_active():
            return self._distributed().explore(initial, on_state=on_state)
        registry = resolve_metrics(self._metrics)
        started = perf_counter()
        with get_tracer().span("explore", engine="sharded", shards=self._shards):
            partials, _ = self._run(initial, on_state=on_state)
            merged = self._merged(partials, initial)
        if registry.enabled:
            registry.counter("engine_explorations_total", engine="sharded").inc()
            registry.gauge("engine_depth_reached").high_water(merged.depth_reached)
            registry.histogram("engine_explore_seconds", engine="sharded").observe(
                perf_counter() - started
            )
        return merged

    def explore_shards(self, initial: Any) -> list[SearchResult]:
        """The per-shard partial results of an exploration (one per shard).

        Each partial holds the states its shard owns, the parent links of
        those states (cross-shard parents marked ``-1``) and the edges
        generated from them.  Fold them with
        :meth:`SearchResult.merge_all` to recover the full exploration —
        this is exactly what :meth:`explore` returns.  Distributed
        engines keep their partials node-resident; use
        :meth:`explore` (merged) or the distributed engine's summary
        mode instead.
        """
        if self._distributed_active():
            raise SearchError(
                "explore_shards() is single-node only: distributed partials live on "
                "their node agents (use explore(), or DistributedEngine.explore_summary)"
            )
        partials, _ = self._run(initial)
        return partials

    def search(
        self,
        initial: Any,
        predicate: Callable[[Any], bool],
        on_state: Callable[[Any, int], None] | None = None,
    ) -> tuple[list | None, SearchResult]:
        """Search for a state satisfying ``predicate``.

        Same contract as :meth:`Engine.search`: returns
        ``(witness_path, merged_result)``; the parent map is maintained
        in every retention mode, and the breadth-first replay makes the
        witness minimal and identical to the single-shard one.
        ``on_state`` fires in global discovery order for each newly
        interned state, exactly as the single-shard engine fires it.
        """
        if self._distributed_active():
            return self._distributed().search(initial, predicate, on_state=on_state)
        registry = resolve_metrics(self._metrics)
        started = perf_counter()
        with get_tracer().span("search", engine="sharded", shards=self._shards):
            partials, hit = self._run(initial, predicate=predicate, on_state=on_state)
            merged = self._merged(partials, initial)
        if registry.enabled:
            registry.counter("engine_explorations_total", engine="sharded").inc()
            registry.gauge("engine_depth_reached").high_water(merged.depth_reached)
            registry.histogram("engine_explore_seconds", engine="sharded").observe(
                perf_counter() - started
            )
        if hit is None:
            return None, merged
        source, edge = hit
        if edge is None:
            return [], merged  # the initial state satisfied the predicate
        path = merged.path_to(source)
        path.append(edge)
        return path, merged

    # -- the coordinator -------------------------------------------------------

    def _merged(self, partials: list[SearchResult], initial: Any) -> SearchResult:
        merged = SearchResult.merge_all(partials)
        merged.initial = merged.interning.canonical(initial)
        return merged

    def _run(
        self,
        initial: Any,
        *,
        predicate: Callable[[Any], bool] | None = None,
        on_state: Callable[[Any, int], None] | None = None,
    ) -> tuple[list[SearchResult], tuple | None]:
        """Level-synchronous exploration; returns ``(partials, hit)``.

        ``hit`` is ``None`` (no predicate or no match), ``(state, None)``
        when the initial state matches, or ``(source_state, edge)`` for
        the first matching edge in single-shard BFS generation order.
        """
        shards = self._shards
        limits = self._limits
        keep_edges = self._retention == RETAIN_FULL
        # Predicate search always keeps parent links (witnesses), as Engine.search does.
        keep_parents = self._retention != RETAIN_COUNTS or predicate is not None
        # The backend is engine-lifetime state: acquired once, reused by
        # every exploration, released by close() — not per call.  It also
        # fixes whether this exploration moves ids or pickled states.
        backend = self._backend()
        store = getattr(backend, "shared_store", None)
        if store is not None:
            # Global dedup; local ids are single-shard discovery order
            # (bit-identical to InternTable), mirrored into the store so
            # frontier batches and returned edges carry shared ids only.
            table = SharedInternTable(store)
            partials = [
                SearchResult(
                    initial=initial,
                    retention=self._retention,
                    interning=SharedInternTable(store),
                )
                for _ in range(shards)
            ]
        else:
            table = InternTable()  # global dedup; ids are single-shard discovery order
            partials = [
                SearchResult(initial=initial, retention=self._retention) for _ in range(shards)
            ]
        # Metrics are boundary-only: `record` is None on the disabled
        # path, so the per-edge replay below never touches the registry
        # and the per-level flushes cost a handful of dict probes.
        registry = resolve_metrics(self._metrics)
        record = registry if registry.enabled else None
        tracer = get_tracer()
        owner: dict[int, int] = {}
        root_id, root, _ = table.intern(initial)
        root_shard = shard_of(root, shards)
        owner[root_id] = root_shard
        root_local, _, _ = partials[root_shard].interning.intern(root)
        partials[root_shard].depths[root_local] = 0
        if record is not None:
            record.counter("engine_states_total", kind="interned").inc()
        if on_state is not None:
            on_state(root, 0)
        if predicate is not None and predicate(root):
            return partials, (root, None)
        total_edges = 0
        level = [root_id]
        depth = 0
        while level:
            for state_id in level:
                part = partials[owner[state_id]]
                if depth > part.depth_reached:
                    part.depth_reached = depth
            if depth >= limits.max_depth:
                break
            if record is not None:
                record.counter("sharded_levels_total").inc()
                record.gauge("engine_frontier_states").high_water(len(level))
            frontiers = ShardFrontiers(shards)
            if store is not None:
                # Id-only frontier entries; a state the slab could not
                # hold (shared id None) travels inline, which is rare
                # and always correct.
                for state_id in level:
                    shared_id = table.shared_id_of(state_id)
                    inline = table.state_of(state_id) if shared_id is None else None
                    frontiers.push(owner[state_id], (state_id, shared_id, inline))
            else:
                for state_id in level:
                    frontiers.push(owner[state_id], (state_id, table.state_of(state_id)))
            expand_started = perf_counter() if record is not None else 0.0
            with tracer.span("expand", depth=depth, frontier=len(level)):
                expansions = backend.expand(frontiers, self._batch_size)
            replay_started = perf_counter() if record is not None else 0.0
            if record is not None:
                record.histogram("sharded_level_seconds", phase="expand").observe(
                    replay_started - expand_started
                )
                if frontiers.steals:
                    record.counter("sharded_steals_total").inc(frontiers.steals)
            edges_before = total_edges
            next_level: list[int] = []
            # Replay in discovery-id order == the order single-shard BFS
            # pops its FIFO frontier, so interning, parent links, limit
            # checks and predicate hits all sequence identically.
            for state_id in level:
                part = partials[owner[state_id]]
                source = table.state_of(state_id)
                for edge in expansions.get(state_id, ()):
                    part.edge_count += 1
                    total_edges += 1
                    if keep_edges:
                        part.edges.append(edge)
                    if predicate is not None and predicate(edge.target):
                        if record is not None:
                            _flush_level(
                                record,
                                len(next_level),
                                total_edges - edges_before,
                                perf_counter() - replay_started,
                            )
                        return partials, (source, edge)
                    target_id, target, is_new = table.intern(edge.target)
                    if is_new:
                        target_shard = shard_of(target, shards)
                        owner[target_id] = target_shard
                        target_part = partials[target_shard]
                        local_id, _, _ = target_part.interning.intern(target)
                        target_part.depths[local_id] = depth + 1
                        if keep_parents:
                            source_local = target_part.interning.id_of(source)
                            target_part.parents[local_id] = (
                                source_local if source_local is not None else -1,
                                edge,
                            )
                        if on_state is not None:
                            on_state(target, depth + 1)
                        next_level.append(target_id)
                    if len(table) >= limits.max_configurations or total_edges >= limits.max_steps:
                        part.truncated = True
                        if record is not None:
                            _flush_level(
                                record,
                                len(next_level),
                                total_edges - edges_before,
                                perf_counter() - replay_started,
                            )
                        return partials, None
            if record is not None:
                _flush_level(
                    record,
                    len(next_level),
                    total_edges - edges_before,
                    perf_counter() - replay_started,
                )
            level = next_level
            depth += 1
        return partials, None
