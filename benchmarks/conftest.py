"""Shared fixtures for the benchmark targets.

Every benchmark runs its experiment exactly once inside pytest-benchmark's
timer (rounds=1) — the experiments are end-to-end pipelines, not
micro-kernels — and prints the rows recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once():
    """Return a helper that benchmarks a callable with a single round."""

    def runner(benchmark, function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
