"""The restaurant booking agency case study (paper, Example 3.2 / Appendix C).

The process manages two business artifacts — *offers* and *bookings* —
through the lifecycles of Figure 5: agents publish restaurant offers
(putting previous ones on hold), customers open bookings on available
offers, drafts collect hosts, the agent finalises a proposal, and the
customer accepts (directly for *gold* customers, via a validation step
otherwise) or cancels.

The paper's formulation uses state constants (``avail``, ``onhold``,
...) inside a binary ``OState``/``BState`` relation; since the core DMS
model is constant-free, the lifecycle states are modelled here by one
unary relation per state — precisely the shape produced by the
constant-removal construction of Appendix F.1.  Registries (``Rest``,
``Ag``, ``Cust``) are populated by explicit registration actions so that
the initial active domain stays empty, as the model requires.
"""

from __future__ import annotations

from repro.dms.builder import DMSBuilder
from repro.dms.system import DMS
from repro.fol.syntax import And, Atom, Equals, Exists, Not, Query, conjunction, exists

__all__ = ["gold_customer_query", "booking_agency_system", "OFFER_STATES", "BOOKING_STATES"]

#: Offer lifecycle states (Figure 5), each modelled as a unary relation.
OFFER_STATES = ("OAvail", "OOnHold", "OClosed", "OBooking")

#: Booking lifecycle states (Figure 5), each modelled as a unary relation.
BOOKING_STATES = ("BDrafting", "BSubmitted", "BFinalized", "BCanceled", "BToValidate", "BAccepted")


def gold_customer_query(customer: str, restaurant: str, threshold: int = 1) -> Query:
    """``Gold_k(c, r)``: the customer completed at least ``k`` accepted bookings at ``r``.

    Follows the query of Appendix C; distinctness constraints between the
    witnessing bookings/offers are added for ``k > 1``.
    """
    offer_vars = [f"go{i}" for i in range(1, threshold + 1)]
    booking_vars = [f"gb{i}" for i in range(1, threshold + 1)]
    agent_vars = [f"ga{i}" for i in range(1, threshold + 1)]
    conjuncts: list[Query] = []
    for i in range(threshold):
        conjuncts.append(Atom("Booking", (booking_vars[i], offer_vars[i], customer)))
        conjuncts.append(Atom("BAccepted", (booking_vars[i],)))
        conjuncts.append(Atom("Offer", (offer_vars[i], restaurant, agent_vars[i])))
    for i in range(threshold):
        for j in range(i + 1, threshold):
            conjuncts.append(Not(Equals(offer_vars[i], offer_vars[j])))
            conjuncts.append(Not(Equals(booking_vars[i], booking_vars[j])))
    return exists(tuple(offer_vars + booking_vars + agent_vars), conjunction(*conjuncts))


def booking_agency_system(gold_threshold: int = 1) -> DMS:
    """The full booking-agency DMS of Appendix C.

    Args:
        gold_threshold: the ``k`` of the gold-customer query (the paper's
            fixed number of past accepted bookings).
    """
    builder = DMSBuilder("booking-agency")
    builder.relations(
        ("Rest", 1),
        ("Ag", 1),
        ("Cust", 1),
        ("Offer", 3),
        ("Booking", 3),
        ("Hosts", 2),
        ("Prop", 2),
        ("open", 0),
    )
    for state in OFFER_STATES + BOOKING_STATES:
        builder.relation(state, 1)
    builder.initially("open")

    # Registries: restaurants, agents and customers enter the system.
    builder.action("regRestaurant", fresh=("r",), guard="open", add=[("Rest", "r")])
    builder.action("regAgent", fresh=("a",), guard="open", add=[("Ag", "a")])
    builder.action("regCustomer", fresh=("c",), guard="open", add=[("Cust", "c")])

    # newO1: an idle agent publishes a new available offer.
    builder.action(
        "newO1",
        parameters=("r", "a"),
        fresh=("o",),
        guard="Rest(r) & Ag(a) & !exists oo, rr. Offer(oo, rr, a)",
        add=[("Offer", "o", "r", "a"), ("OAvail", "o")],
    )
    # newO2: an agent holding an available offer puts it on hold and publishes a new one.
    builder.action(
        "newO2",
        parameters=("r", "a", "oold"),
        fresh=("o",),
        guard="Rest(r) & Ag(a) & (exists rr. Offer(oold, rr, a)) & OAvail(oold)",
        delete=[("OAvail", "oold")],
        add=[("Offer", "o", "r", "a"), ("OAvail", "o"), ("OOnHold", "oold")],
    )
    # resume: an idle agent picks up an on-hold offer.
    builder.action(
        "resume",
        parameters=("a", "o", "r", "aold"),
        fresh=(),
        guard=(
            "Ag(a) & Offer(o, r, aold) & OOnHold(o) & !exists oo, rr. Offer(oo, rr, a)"
        ),
        delete=[("Offer", "o", "r", "aold"), ("OOnHold", "o")],
        add=[("Offer", "o", "r", "a"), ("OAvail", "o")],
    )
    # closeO: an available offer expires.
    builder.action(
        "closeO",
        parameters=("o",),
        guard="(exists rr, aa. Offer(o, rr, aa)) & OAvail(o)",
        delete=[("OAvail", "o")],
        add=[("OClosed", "o")],
    )
    # newB: a customer opens a booking on an available offer.
    builder.action(
        "newB",
        parameters=("c", "o"),
        fresh=("bk",),
        guard="Cust(c) & (exists rr, aa. Offer(o, rr, aa)) & OAvail(o)",
        delete=[("OAvail", "o")],
        add=[("OBooking", "o"), ("Booking", "bk", "o", "c"), ("BDrafting", "bk")],
    )
    # addP1 / addP2: the customer adds hosts (registered customer or external person).
    builder.action(
        "addP1",
        parameters=("bk", "h"),
        guard="(exists oo, cc. Booking(bk, oo, cc)) & BDrafting(bk) & Cust(h)",
        add=[("Hosts", "bk", "h")],
    )
    builder.action(
        "addP2",
        parameters=("bk",),
        fresh=("h",),
        guard="(exists oo, cc. Booking(bk, oo, cc)) & BDrafting(bk)",
        add=[("Hosts", "bk", "h")],
    )
    # checkP: the agent checks hosts one by one (the F.4-style loop).
    builder.action(
        "checkP",
        parameters=("bk", "h"),
        guard="(exists oo, cc. Booking(bk, oo, cc)) & BDrafting(bk) & Hosts(bk, h)",
        delete=[("Hosts", "bk", "h")],
    )
    # reject: the agent rejects a fully-checked draft; the offer becomes available again.
    builder.action(
        "reject",
        parameters=("bk", "o"),
        guard="(exists cc. Booking(bk, o, cc)) & BDrafting(bk) & !exists hh. Hosts(bk, hh)",
        delete=[("BDrafting", "bk"), ("OBooking", "o")],
        add=[("BCanceled", "bk"), ("OAvail", "o")],
    )
    # detProp: the agent finalises the draft with a proposal URL.
    builder.action(
        "detProp",
        parameters=("bk",),
        fresh=("url",),
        guard="(exists oo, cc. Booking(bk, oo, cc)) & BDrafting(bk) & !exists hh. Hosts(bk, hh)",
        delete=[("BDrafting", "bk")],
        add=[("BFinalized", "bk"), ("Prop", "bk", "url")],
    )
    # cancel: the customer cancels a finalized booking.
    builder.action(
        "cancel",
        parameters=("bk", "o"),
        guard="(exists cc. Booking(bk, o, cc)) & BFinalized(bk)",
        delete=[("BFinalized", "bk"), ("OBooking", "o")],
        add=[("BCanceled", "bk"), ("OAvail", "o")],
    )
    builder_schema = builder.schema()

    # accept1 / accept2: conditional acceptance based on the gold-customer history query.
    gold = gold_customer_query("c", "r", gold_threshold)
    accept_guard_common = And(
        And(Atom("Booking", ("bk", "o", "c")), Atom("BFinalized", ("bk",))),
        Exists("aa", Atom("Offer", ("o", "r", "aa"))),
    )
    builder.action(
        "accept1",
        parameters=("bk", "o", "c", "r"),
        guard=And(accept_guard_common, gold),
        delete=[("BFinalized", "bk"), ("OBooking", "o")],
        add=[("BAccepted", "bk"), ("OClosed", "o")],
    )
    builder.action(
        "accept2",
        parameters=("bk", "o", "c", "r"),
        guard=And(accept_guard_common, Not(gold)),
        delete=[("BFinalized", "bk")],
        add=[("BToValidate", "bk")],
    )
    # confirm: final validation for non-gold customers.
    builder.action(
        "confirm",
        parameters=("bk", "o"),
        guard="(exists cc. Booking(bk, o, cc)) & BToValidate(bk)",
        delete=[("BToValidate", "bk"), ("OBooking", "o")],
        add=[("BAccepted", "bk"), ("OClosed", "o")],
    )
    _ = builder_schema
    return builder.build()
