"""Equivalence of runs modulo permutation of the data domain (Appendix E).

Two b-bounded extended runs with the same abstraction are isomorphic via
a bijection of their global active domains (Lemma E.1).  The module
offers a direct constructive check of that statement, used both in tests
and by the E4 benchmark.
"""

from __future__ import annotations

from repro.recency.semantics import RecencyBoundedRun

__all__ = ["run_isomorphism", "runs_equivalent_modulo_permutation", "is_canonical_run"]


def run_isomorphism(left: RecencyBoundedRun, right: RecencyBoundedRun) -> dict | None:
    """Construct the bijection ``λ`` witnessing equivalence modulo permutation.

    Following Appendix E, ``λ`` maps the value injected by the ``k``-th
    fresh variable of step ``i`` of ``left`` to the value injected by the
    same variable of the same step of ``right``.  Returns ``None`` when
    the two prefixes have different lengths, use different actions, or the
    candidate mapping fails to be an isomorphism on some instance.
    """
    if len(left.steps) != len(right.steps):
        return None
    mapping: dict = {}
    for left_step, right_step in zip(left.steps, right.steps):
        if left_step.action.name != right_step.action.name:
            return None
        for fresh_variable in left_step.action.fresh:
            source = left_step.substitution[fresh_variable]
            target = right_step.substitution[fresh_variable]
            if mapping.get(source, target) != target:
                return None
            mapping[source] = target
    # λ must be injective.
    if len(set(mapping.values())) != len(mapping):
        return None
    for left_conf, right_conf in zip(left.configurations(), right.configurations()):
        instance = left_conf.instance
        if not all(value in mapping for value in instance.active_domain()):
            return None
        if not instance.is_isomorphic_to(right_conf.instance, mapping):
            return None
        if instance.rename_values(mapping).facts != right_conf.instance.facts:
            return None
    return mapping


def runs_equivalent_modulo_permutation(
    left: RecencyBoundedRun, right: RecencyBoundedRun
) -> bool:
    """True when the two run prefixes are equivalent modulo a domain permutation."""
    return run_isomorphism(left, right) is not None


def is_canonical_run(run: RecencyBoundedRun) -> bool:
    """True when every configuration of the run satisfies the canonicity
    invariants of Section 6.1 (gap-free history ``{e1..en}``, ``seq_no(e_j)=j``,
    fresh variables bound to the next standard names in order)."""
    from repro.database.domain import standard_value

    for configuration in run.configurations():
        if not configuration.is_canonical():
            return False
    for step in run.steps:
        history_size = len(step.source.history)
        for offset, fresh_variable in enumerate(step.action.fresh, start=1):
            if step.substitution[fresh_variable] != standard_value(history_size + offset):
                return False
    return True
