"""E4 — Section 6.1 / Appendix E: Abstr/Concr round trip on random systems."""

from repro.harness.experiments import experiment_e4_abstraction_roundtrip
from repro.harness.reporting import print_experiment


def test_e4_abstraction_roundtrip(benchmark, run_once):
    rows = run_once(benchmark, experiment_e4_abstraction_roundtrip)
    print_experiment("E4", "Abstraction/concretisation round trip (Lemma E.1)", rows)
    assert all(row["all_equivalent"] for row in rows)
