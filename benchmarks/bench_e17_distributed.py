"""E17 — two-level distributed exploration: per-node intern tables over TCP.

Gates the distributed PR's acceptance criteria:

* **Memory is the point** — on the booking case study, a 2-node
  exploration in summary mode must keep **peak coordinator-resident
  interned states ≤ 0.6× the single-table baseline** (the baseline is
  the plain engine, whose one intern table holds every configuration on
  the coordinating machine).  The coordinator of the two-level scheme
  pins only the root, so the ratio is tiny by construction; the row also
  records the *per-node* ceiling (``max_node_ratio``), which is what the
  memory budget of one machine actually becomes.
* **Bit-identical results** — the 2-node localhost TCP run must match
  single-node, single-shard BFS exactly (configuration set, edge count,
  depths, truncation) across retention modes, and bounded reachability
  through ``nodes=2`` must agree with the serial query verdict-for-
  verdict and step-for-step.  Asserted wherever the fork launcher runs.
* **Wall-clock is recorded but NOT gated**: on loopback the per-level
  frame exchange usually loses to the in-process engine — the scheme
  buys memory headroom, not single-machine speed — and the trend gate's
  sub-parity rule keeps such rows out of ratio comparisons.

Timings and rows persist to ``benchmarks/results/BENCH_E17.json`` via
the shared ``run_once`` fixture.
"""

import os
import time

from repro.casestudies.booking import booking_agency_system
from repro.distributed import DistributedEngine
from repro.fol.parser import parse_query
from repro.harness.reporting import print_experiment
from repro.modelcheck import query_reachable_bounded
from repro.recency.explorer import RecencyExplorationLimits, RecencyExplorer
from repro.recency.semantics import (
    enumerate_b_bounded_successors,
    initial_recency_configuration,
)
from repro.search import (
    RETAIN_COUNTS,
    SearchLimits,
    process_backend_available,
)

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
FORK = process_backend_available()
MEMORY_BUDGET = 0.6  # coordinator-resident states vs the single-table baseline

_BOOKING = booking_agency_system()
_BOUND = 2


def _booking_successors(bound: int):
    system = _BOOKING
    return lambda configuration: enumerate_b_bounded_successors(system, configuration, bound)


def two_level_memory(quick: bool) -> list[dict]:
    """Peak resident interned states: single table vs 2-node summary mode."""
    depth = 4 if quick else 5
    limits = RecencyExplorationLimits(max_depth=depth)
    started = time.perf_counter()
    single = RecencyExplorer(_BOOKING, _BOUND, limits, retention=RETAIN_COUNTS).explore()
    single_seconds = time.perf_counter() - started
    baseline_states = single.configuration_count
    rows = [
        {
            "mode": "single table (baseline)",
            "nodes": 1,
            "states": baseline_states,
            "edges": single.edge_count,
            "coordinator_resident": baseline_states,
            "coordinator_ratio": 1.0,
            "max_node_ratio": 1.0,
            "seconds": round(single_seconds, 4),
            "speedup": 1.0,
        }
    ]
    if not FORK:
        rows.append({"mode": "2-node distributed unavailable (no fork)", "nodes": 2})
        return rows
    with DistributedEngine(
        _booking_successors(_BOUND),
        nodes=2,
        limits=SearchLimits(max_depth=depth),
        retention=RETAIN_COUNTS,
    ) as engine:
        root = initial_recency_configuration(_BOOKING)
        started = time.perf_counter()
        summary = engine.explore_summary(root)
        seconds = time.perf_counter() - started
    rows.append(
        {
            "mode": "2-node distributed (summary, per-node tables)",
            "nodes": 2,
            "states": summary.states,
            "edges": summary.edges,
            "coordinator_resident": summary.coordinator_states,
            "coordinator_ratio": round(summary.coordinator_states / baseline_states, 4),
            "max_node_ratio": round(summary.max_node_states / baseline_states, 4),
            "seconds": round(seconds, 4),
            # Loopback TCP is expected to lose to in-process exploration;
            # recorded for the trajectory, excluded from trend ratio
            # gating by the sub-parity rule when below 1.0.
            "speedup": round(single_seconds / seconds, 2) if seconds else None,
            "results_match": (
                summary.states == single.configuration_count
                and summary.edges == single.edge_count
                and summary.truncated == single.truncated
            ),
            "memory_ok": summary.coordinator_states <= MEMORY_BUDGET * baseline_states,
        }
    )
    return rows


def test_e17_two_level_memory_ceiling(benchmark, run_once):
    rows = run_once(benchmark, two_level_memory, QUICK)
    print_experiment("E17", "Two-level distributed: coordinator-resident states", rows)
    if FORK:
        distributed = rows[1]
        assert distributed["results_match"], distributed
        assert distributed["memory_ok"], distributed
        assert distributed["coordinator_ratio"] <= MEMORY_BUDGET, distributed


def booking_bit_identical(quick: bool) -> list[dict]:
    """2-node TCP exploration and reachability vs the single-shard engine."""
    depth = 4 if quick else 5
    limits = RecencyExplorationLimits(max_depth=depth)
    reference = RecencyExplorer(_BOOKING, _BOUND, limits, retention=RETAIN_COUNTS).explore()
    if not FORK:
        return [{"case": "booking", "mode": "distributed unavailable (no fork)"}]
    with RecencyExplorer(
        _BOOKING, _BOUND, limits, retention=RETAIN_COUNTS, nodes=2
    ) as explorer:
        backend = explorer.backend_name
        started = time.perf_counter()
        result = explorer.explore()
        elapsed = time.perf_counter() - started

    condition = parse_query("exists o. OAvail(o)")
    serial = query_reachable_bounded(_BOOKING, condition, _BOUND, max_depth=depth)
    distributed = query_reachable_bounded(
        _BOOKING, condition, _BOUND, max_depth=depth, nodes=2
    )
    witness_match = serial.reachable == distributed.reachable and (
        (serial.witness is None) == (distributed.witness is None)
    )
    if serial.witness is not None and distributed.witness is not None:
        witness_match = witness_match and serial.witness.steps == distributed.witness.steps
    return [
        {
            "case": "booking",
            "bound": _BOUND,
            "depth": depth,
            "backend": backend,
            "configurations": result.configuration_count,
            "edges": result.edge_count,
            "seconds": round(elapsed, 4),
            "results_match": (
                result.configuration_count == reference.configuration_count
                and result.edge_count == reference.edge_count
                and result.truncated == reference.truncated
                and result.configurations == reference.configurations
            ),
            "witness_match": witness_match,
        }
    ]


def test_e17_booking_results_bit_identical(benchmark, run_once):
    rows = run_once(benchmark, booking_bit_identical, QUICK)
    print_experiment("E17", "2-node TCP run is bit-identical on booking", rows)
    if FORK:
        row = rows[0]
        assert row["backend"] == "distributed", row
        assert row["results_match"], row
        assert row["witness_match"], row
