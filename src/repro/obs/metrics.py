"""The metrics registry: counters, gauges and histograms that fold.

Design goals, in order:

1. **The disabled path costs ~nothing.**  Every instrumented component
   resolves its registry through :func:`resolve_metrics`, which defaults
   to the process-wide :data:`NULL_REGISTRY` — a registry whose handle
   getters return *shared no-op singletons*.  Instrumentation therefore
   never allocates on the disabled path, and the hot loops themselves
   are instrumented at **boundaries only** (explore end, level barriers,
   task completion): the engine accumulates into locals it already
   maintains and flushes a handful of counter updates per level, never
   per edge.  The E20 bench gates this at ≤5% overhead.

2. **Snapshots fold associatively.**  Forked pool workers and TCP node
   agents accumulate into their own local :class:`MetricsRegistry` and
   ship :meth:`~MetricsRegistry.snapshot` back to the parent, which
   :meth:`~MetricsRegistry.fold`\\ s them in — the same associative-merge
   idiom as :class:`repro.search.SearchResult.merge`.  Counters add,
   gauges take the maximum and histograms merge component-wise, so the
   folded totals are independent of arrival order.

3. **Handles are picklable.**  A handle is a plain ``__slots__`` record
   (name, label items, value); a whole registry snapshot is a dict of
   tuples, safe to pickle across fork pipes and TCP frames.

The text :meth:`~MetricsRegistry.exposition` renders the Prometheus
style ``name{label="value"} count`` lines the future service layer will
serve from ``/metrics``; the harness prints it under ``--metrics``.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

__all__ = [
    "Counter",
    "EXPOSITION_CONTENT_TYPE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_metrics",
    "resolve_metrics",
    "set_global_registry",
]

#: The media type of :meth:`MetricsRegistry.exposition` output (what the
#: service layer's ``/metrics`` endpoint declares).
EXPOSITION_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _label_key(labels: dict) -> tuple:
    """Canonical (sorted, hashable) form of a label set."""
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count (events, states, bytes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A point-in-time value (frontier size, resident states).

    Folding across processes keeps the **maximum** observed value, which
    is the meaningful aggregate for high-water marks and keeps the fold
    commutative; a gauge that should add across workers is a counter.
    """

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        """Record the current value."""
        self.value = value

    def high_water(self, value: int | float) -> None:
        """Record ``value`` only when it exceeds the current one."""
        if value > self.value:
            self.value = value


class _Timer:
    """Context manager observing its ``with`` block's wall-clock seconds."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: "Histogram") -> None:
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_Timer":
        self._started = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(perf_counter() - self._started)


class Histogram:
    """A distribution summary: count, sum and min/max of observations.

    Rendered in the exposition as ``name_count``, ``name_sum``,
    ``name_min`` and ``name_max`` lines (a Prometheus summary without
    quantiles — enough for latency budgets without per-observation
    storage).
    """

    __slots__ = ("name", "labels", "count", "total", "minimum", "maximum")

    def __init__(self, name: str, labels: tuple = ()) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def time(self) -> _Timer:
        """A context manager observing the block's elapsed seconds."""
        return _Timer(self)

    def mean(self) -> float:
        """Average observation (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """The distribution as a plain dict (count/sum/mean/min/max).

        The shape load reports and JSON dumps use; ``min``/``max`` are
        ``None`` before any observation.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.minimum,
            "max": self.maximum,
        }


def _format_labels(labels: tuple) -> str:
    """Render a label tuple as ``{k="v",...}`` (empty string when unlabelled)."""
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


def _format_value(value: Any) -> str:
    """Render a sample value: integers bare, floats with full precision."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    return repr(value)


class MetricsRegistry:
    """A process-local family of counters, gauges and histograms.

    Handle getters (:meth:`counter`, :meth:`gauge`, :meth:`histogram`)
    get-or-create by ``(name, sorted label items)``, so repeated lookups
    are dictionary probes and callers may cache handles across calls.
    Not thread-safe by design: each worker process (and the coordinator)
    owns its own registry and the aggregates travel as snapshots.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- handles ---------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter ``name`` with ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter(name, key[1])
        return handle

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge ``name`` with ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge(name, key[1])
        return handle

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram ``name`` with ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram(name, key[1])
        return handle

    # -- reading ---------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> int | float:
        """Current value of a counter (0 when it was never touched)."""
        handle = self._counters.get((name, _label_key(labels)))
        return handle.value if handle is not None else 0

    def gauge_value(self, name: str, **labels: Any) -> int | float:
        """Current value of a gauge (0 when it was never touched)."""
        handle = self._gauges.get((name, _label_key(labels)))
        return handle.value if handle is not None else 0

    def sum_counter(self, name: str, **match: Any) -> int | float:
        """Total of ``name`` across label sets containing ``match``.

        ``sum_counter("store_lookups_total", outcome="hit")`` adds the
        hit counters of every kind (and, after folding, every node).
        """
        wanted = set(match.items())
        return sum(
            handle.value
            for (n, key_labels), handle in self._counters.items()
            if n == name and wanted.issubset(key_labels)
        )

    # -- folding ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable dump of every instrument, for cross-process folding."""
        return {
            "counters": {key: handle.value for key, handle in self._counters.items()},
            "gauges": {key: handle.value for key, handle in self._gauges.items()},
            "histograms": {
                key: (handle.count, handle.total, handle.minimum, handle.maximum)
                for key, handle in self._histograms.items()
            },
        }

    def fold(self, snapshot: dict | None, **labels: Any) -> None:
        """Merge a :meth:`snapshot` into this registry (order-insensitive).

        Counters add, gauges keep the maximum, histograms merge their
        count/sum/min/max component-wise.  Extra ``labels`` (e.g.
        ``node="2"``) are appended to every folded key, so per-worker
        series stay distinguishable while :meth:`sum_counter` still
        aggregates them.
        """
        if not snapshot:
            return
        extra = _label_key(labels)
        for (name, key_labels), value in snapshot.get("counters", {}).items():
            handle = self._counter_by_key(name, key_labels + extra)
            handle.value += value
        for (name, key_labels), value in snapshot.get("gauges", {}).items():
            handle = self._gauge_by_key(name, key_labels + extra)
            if value > handle.value:
                handle.value = value
        for (name, key_labels), summary in snapshot.get("histograms", {}).items():
            count, total, minimum, maximum = summary
            handle = self._histogram_by_key(name, key_labels + extra)
            handle.count += count
            handle.total += total
            if minimum is not None and (handle.minimum is None or minimum < handle.minimum):
                handle.minimum = minimum
            if maximum is not None and (handle.maximum is None or maximum > handle.maximum):
                handle.maximum = maximum

    def _counter_by_key(self, name: str, key_labels: tuple) -> Counter:
        key = (name, key_labels)
        handle = self._counters.get(key)
        if handle is None:
            handle = self._counters[key] = Counter(name, key_labels)
        return handle

    def _gauge_by_key(self, name: str, key_labels: tuple) -> Gauge:
        key = (name, key_labels)
        handle = self._gauges.get(key)
        if handle is None:
            handle = self._gauges[key] = Gauge(name, key_labels)
        return handle

    def _histogram_by_key(self, name: str, key_labels: tuple) -> Histogram:
        key = (name, key_labels)
        handle = self._histograms.get(key)
        if handle is None:
            handle = self._histograms[key] = Histogram(name, key_labels)
        return handle

    # -- rendering -------------------------------------------------------------

    def exposition(self) -> str:
        """Prometheus-style text form: one ``name{labels} value`` per line.

        Counters and gauges render as single samples; a histogram
        renders as ``_count``/``_sum``/``_min``/``_max`` samples.  Lines
        are sorted, so the output is deterministic and diff-friendly.
        """
        lines = []
        for (name, key_labels), handle in self._counters.items():
            lines.append(f"{name}{_format_labels(key_labels)} {_format_value(handle.value)}")
        for (name, key_labels), handle in self._gauges.items():
            lines.append(f"{name}{_format_labels(key_labels)} {_format_value(handle.value)}")
        for (name, key_labels), handle in self._histograms.items():
            rendered = _format_labels(key_labels)
            lines.append(f"{name}_count{rendered} {handle.count}")
            lines.append(f"{name}_sum{rendered} {_format_value(handle.total)}")
            if handle.minimum is not None:
                lines.append(f"{name}_min{rendered} {_format_value(handle.minimum)}")
            if handle.maximum is not None:
                lines.append(f"{name}_max{rendered} {_format_value(handle.maximum)}")
        return "\n".join(sorted(lines))


class _NullCounter:
    """Shared no-op counter returned by the null registry."""

    __slots__ = ()

    def inc(self, amount: int | float = 1) -> None:
        """Discard the update."""


class _NullGauge:
    """Shared no-op gauge returned by the null registry."""

    __slots__ = ()

    def set(self, value: int | float) -> None:
        """Discard the update."""

    def high_water(self, value: int | float) -> None:
        """Discard the update."""


class _NullTimer:
    """Shared no-op timing context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


class _NullHistogram:
    """Shared no-op histogram returned by the null registry."""

    __slots__ = ()

    def observe(self, value: int | float) -> None:
        """Discard the observation."""

    def time(self) -> _NullTimer:
        """The shared no-op timer (no allocation)."""
        return _NULL_TIMER

    def mean(self) -> float:
        """Always 0.0."""
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_TIMER = _NullTimer()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """The disabled-path registry: every handle is a shared no-op singleton.

    Instrumented code needs no ``if metrics:`` branches for correctness —
    updates vanish — but hot paths still guard *per-item* work on
    :attr:`enabled` so the disabled path does not even format label
    dictionaries.  :data:`NULL_REGISTRY` is the process-wide instance and
    the default returned by :func:`resolve_metrics`.
    """

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NullCounter:
        """The shared no-op counter (no allocation)."""
        return _NULL_COUNTER

    def gauge(self, name: str, **labels: Any) -> _NullGauge:
        """The shared no-op gauge (no allocation)."""
        return _NULL_GAUGE

    def histogram(self, name: str, **labels: Any) -> _NullHistogram:
        """The shared no-op histogram (no allocation)."""
        return _NULL_HISTOGRAM

    def counter_value(self, name: str, **labels: Any) -> int:
        """Always 0."""
        return 0

    def gauge_value(self, name: str, **labels: Any) -> int:
        """Always 0."""
        return 0

    def sum_counter(self, name: str, **match: Any) -> int:
        """Always 0."""
        return 0

    def snapshot(self) -> dict:
        """An empty snapshot (folds as a no-op)."""
        return {}

    def fold(self, snapshot: dict | None, **labels: Any) -> None:
        """Discard the snapshot."""

    def exposition(self) -> str:
        """The empty exposition."""
        return ""


NULL_REGISTRY = NullRegistry()

_GLOBAL_REGISTRY: MetricsRegistry | NullRegistry = NULL_REGISTRY


def set_global_registry(registry: MetricsRegistry | NullRegistry | None):
    """Install the process-wide registry; returns the previous one.

    ``None`` restores the :data:`NULL_REGISTRY` default.  The harness
    installs a real registry under ``--metrics`` so that engines, pools
    and stores constructed deep inside experiment code — none of which
    thread a ``metrics=`` parameter through — pick it up via
    :func:`resolve_metrics`.
    """
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry if registry is not None else NULL_REGISTRY
    return previous


def get_metrics() -> MetricsRegistry | NullRegistry:
    """The process-wide registry (the null registry unless installed)."""
    return _GLOBAL_REGISTRY


def resolve_metrics(metrics: MetricsRegistry | NullRegistry | None = None):
    """``metrics`` itself, or the process-wide registry when ``None``.

    The one-line resolution every instrumented constructor/entry point
    uses for its optional ``metrics=`` parameter.
    """
    return metrics if metrics is not None else _GLOBAL_REGISTRY
