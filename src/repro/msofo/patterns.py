"""Verification-problem patterns expressible in MSO-FO (paper, Examples 4.1–4.3).

Included:

* :func:`reachability_formula`, :func:`safety_formula`,
  :func:`repeated_reachability_formula`, :func:`response_formula` — the
  standard verification problems mentioned in Section 4.
* :func:`student_progression_formula` — the introduction's
  "every enrolled student eventually graduates" property.
* :func:`runs_characterisation_formula` — the formula ``ϕ_Runs^S`` of
  Example 4.1 characterising the runs of a DMS inside MSO-FO (using one
  set variable per action and the local-consistency constraint ``ϕ_α``).
* :func:`constrained_model_checking_formula` — Example 4.3's reduction of
  constrained to unconstrained model checking.
"""

from __future__ import annotations

from repro.dms.action import Action
from repro.dms.system import DMS
from repro.fol.active import active_query
from repro.fol.syntax import Atom, Query
from repro.msofo.syntax import (
    And,
    ExistsData,
    ExistsPosition,
    ForallData,
    ForallPosition,
    ForallSet,
    Formula,
    Implies,
    InSet,
    Not,
    Or,
    PositionLess,
    QueryAt,
    conjunction_formula,
    disjunction_formula,
    successor,
)

__all__ = [
    "proposition_reachability_formula",
    "reachability_formula",
    "safety_formula",
    "repeated_reachability_formula",
    "response_formula",
    "student_progression_formula",
    "action_local_consistency_formula",
    "runs_characterisation_formula",
    "constrained_model_checking_formula",
]


def proposition_reachability_formula(proposition: str) -> Formula:
    """``∃x. p@x``: the proposition ``p`` eventually holds (Example 4.2)."""
    return ExistsPosition("x", QueryAt(Atom(proposition, ()), "x"))


def reachability_formula(query: Query, position: str = "x") -> Formula:
    """``∃x. Q@x`` for a boolean query ``Q``."""
    return ExistsPosition(position, QueryAt(query, position))


def safety_formula(bad_condition: Query, position: str = "x") -> Formula:
    """``∀x. ¬Bad@x``: the bad condition never holds."""
    return ForallPosition(position, Not(QueryAt(bad_condition, position)))


def repeated_reachability_formula(query: Query) -> Formula:
    """``∀x ∃y. x < y ∧ Q@y``: the condition holds infinitely often.

    Over finite prefixes the formula is read as "after every position
    there is a later position where the condition holds".
    """
    return ForallPosition(
        "x", ExistsPosition("y", And(PositionLess("x", "y"), QueryAt(query, "y")))
    )


def response_formula(trigger: Query, response: Query) -> Formula:
    """``∀x. trigger@x ⇒ ∃y. x < y ∧ response@y`` (a liveness/response pattern)."""
    return ForallPosition(
        "x",
        Implies(
            QueryAt(trigger, "x"),
            ExistsPosition("y", And(PositionLess("x", "y"), QueryAt(response, "y"))),
        ),
    )


def student_progression_formula(
    enrolled_relation: str = "Enrolled", graduated_relation: str = "Graduated"
) -> Formula:
    """The introduction's example property.

    ``∀x ∀g u. Enrolled(u)@x ⇒ ∃y. y > x ∧ Graduated(u)@y``
    """
    return ForallPosition(
        "x",
        ForallData(
            "u",
            Implies(
                QueryAt(Atom(enrolled_relation, ("u",)), "x"),
                ExistsPosition(
                    "y",
                    And(PositionLess("x", "y"), QueryAt(Atom(graduated_relation, ("u",)), "y")),
                ),
            ),
        ),
    )


def _set_variable_for_action(action_name: str) -> str:
    return f"X_{action_name}"


def action_local_consistency_formula(system: DMS, action: Action, position: str = "x") -> Formula:
    """The formula ``ϕ_α(x)`` of Example 4.1.

    It asserts that the databases at ``x`` and its successor are locally
    consistent with applying ``α``: the parameters are active at ``x``,
    the fresh inputs were never active up to ``x``, the guard holds at
    ``x``, the added tuples hold at the successor and the deleted tuples
    (not re-added) do not.
    """
    successor_variable = "y"
    conjuncts: list[Formula] = []
    for parameter in action.parameters:
        conjuncts.append(QueryAt(active_query(system.schema, parameter), position))
    for fresh_variable in action.fresh:
        earlier = "y_hist"
        never_active_before = ForallPosition(
            earlier,
            Implies(
                Or(PositionLess(earlier, position), _equals(earlier, position)),
                Not(QueryAt(active_query(system.schema, fresh_variable), earlier)),
            ),
        )
        conjuncts.append(never_active_before)
    conjuncts.append(QueryAt(action.guard, position))
    post_conjuncts: list[Formula] = []
    added = set(action.additions.facts)
    for fact in sorted(added, key=str):
        post_conjuncts.append(
            QueryAt(Atom(fact.relation, tuple(str(argument) for argument in fact.arguments)), successor_variable)
        )
    for fact in sorted(set(action.deletions.facts) - added, key=str):
        post_conjuncts.append(
            Not(
                QueryAt(
                    Atom(fact.relation, tuple(str(argument) for argument in fact.arguments)),
                    successor_variable,
                )
            )
        )
    post = conjunction_formula(*post_conjuncts) if post_conjuncts else None
    effect = ExistsPosition(
        successor_variable,
        And(successor(position, successor_variable), post)
        if post is not None
        else successor(position, successor_variable),
    )
    conjuncts.append(effect)
    body = conjunction_formula(*conjuncts)
    variables = list(action.parameters) + list(action.fresh)
    for variable in reversed(variables):
        body = ExistsData(variable, body)
    return body


def _equals(left: str, right: str) -> Formula:
    from repro.msofo.syntax import PositionEquals

    return PositionEquals(left, right)


def runs_characterisation_formula(system: DMS) -> Formula:
    """The formula ``ϕ_Runs^S`` of Example 4.1.

    Using one set variable ``X_α`` per action, the formula states that the
    ``X_α`` partition the non-final positions and that each position in
    ``X_α`` is locally consistent with applying ``α``.  The formula is
    universally quantified over the set variables in the form
    "for all partitions ... implies local consistency", so that it holds
    exactly on sequences of instances that are runs of the system when
    paired with the partition witnessing the actions taken.

    Note: evaluating this formula enumerates subsets of positions and is
    therefore only practical on short prefixes; the model checker uses the
    operational run enumeration instead and this formula is provided for
    fidelity with the paper (and exercised on small examples in tests).
    """
    position = "x"
    membership_cases = []
    for action in system.actions:
        set_variable = _set_variable_for_action(action.name)
        membership_cases.append(
            Implies(
                InSet(position, set_variable),
                action_local_consistency_formula(system, action, position),
            )
        )
    has_successor = ExistsPosition("x_next", PositionLess(position, "x_next"))
    in_some_set = disjunction_formula(
        *[InSet(position, _set_variable_for_action(action.name)) for action in system.actions]
    )
    body = ForallPosition(
        position,
        And(
            Implies(has_successor, in_some_set),
            conjunction_formula(*membership_cases),
        ),
    )
    formula: Formula = body
    for action in reversed(system.actions):
        formula = ForallSet(_set_variable_for_action(action.name), formula)
    return formula


def constrained_model_checking_formula(constraint: Query, specification: Formula) -> Formula:
    """Example 4.3: reduce constrained model checking to ``(∀x. φ_c@x) ⇒ φ``."""
    return Implies(ForallPosition("x_c", QueryAt(constraint, "x_c")), specification)
