"""Database-manipulating systems: model and execution semantics (paper, Section 3)."""

from repro.dms.action import Action
from repro.dms.builder import DMSBuilder
from repro.dms.configuration import Configuration
from repro.dms.graph import (
    ConfigurationGraphExplorer,
    ExplorationLimits,
    ExplorationResult,
    iterate_runs,
)
from repro.dms.run import ExtendedRun, Run, Step
from repro.dms.semantics import (
    apply_action,
    enumerate_guard_answers,
    enumerate_successors,
    execute_labels,
    initial_configuration,
    is_instantiating_substitution,
    successor_configuration,
)
from repro.dms.system import DMS

__all__ = [
    "Action",
    "Configuration",
    "ConfigurationGraphExplorer",
    "DMS",
    "DMSBuilder",
    "ExplorationLimits",
    "ExplorationResult",
    "ExtendedRun",
    "Run",
    "Step",
    "apply_action",
    "enumerate_guard_answers",
    "enumerate_successors",
    "execute_labels",
    "initial_configuration",
    "is_instantiating_substitution",
    "iterate_runs",
    "successor_configuration",
]
