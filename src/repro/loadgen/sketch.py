"""A small mergeable quantile sketch for latency distributions.

Per-request latencies need quantiles (p50/p99) without keeping every
observation, and per-user driver threads each record into their own
sketch, so the structure must merge.  :class:`QuantileSketch` is a
log-bucketed counting sketch (the DDSketch idea, dependency-free):
values land in geometric buckets ``[gamma**i, gamma**(i+1))`` with
``gamma = (1 + rel) / (1 - rel)``, so any reported quantile is within
relative error ``rel`` of an exact rank statistic.  Bucket counts are
integers, which makes :meth:`merge` **exactly** associative and
commutative — the property the hypothesis suite pins down — while
``count``/``min``/``max`` stay exact and quantiles are clamped into the
observed ``[min, max]`` range.
"""

from __future__ import annotations

import math

from repro.errors import ReproError

__all__ = ["QuantileSketch"]

#: Values at or below this floor share the lowest bucket (latencies are
#: non-negative; an exact zero still updates ``min`` exactly).
_FLOOR = 1e-9


class QuantileSketch:
    """Quantiles over non-negative observations in bounded space.

    Args:
        relative_error: the quantile-value accuracy guarantee (default
            1% — about 700 buckets span nanoseconds to hours).
    """

    __slots__ = ("relative_error", "_gamma", "_log_gamma", "count", "total", "minimum", "maximum", "buckets")

    def __init__(self, relative_error: float = 0.01) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ReproError("relative_error must be in (0, 1)")
        self.relative_error = relative_error
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.buckets: dict[int, int] = {}

    # -- recording ---------------------------------------------------------------

    def _index(self, value: float) -> int:
        return math.floor(math.log(max(value, _FLOOR)) / self._log_gamma)

    def observe(self, value: float) -> None:
        """Record one observation (negative values are rejected)."""
        if value < 0:
            raise ReproError(f"the sketch records non-negative values, got {value}")
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    # -- querying ----------------------------------------------------------------

    def quantile(self, q: float) -> float | None:
        """The value at quantile ``q`` in [0, 1] (``None`` when empty).

        Walks the buckets in value order to the observation with rank
        ``ceil(q * count)`` and returns that bucket's log-midpoint,
        clamped into ``[min, max]`` — so results are monotone in ``q``
        and never stray outside the observed range.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                value = self._gamma ** (index + 0.5)
                return min(max(value, self.minimum), self.maximum)
        return self.maximum  # unreachable: bucket counts sum to count

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict[str, float | None]:
        """Several quantiles at once, keyed ``p50``-style for reports."""
        return {f"p{round(q * 100):d}": self.quantile(q) for q in qs}

    def mean(self) -> float:
        """Average observation (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    # -- merging / serialization -------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """A new sketch holding both inputs' observations.

        Bucket counts, counts and min/max combine exactly, so merging
        is associative and commutative regardless of grouping — per-user
        sketches can fold in any order.
        """
        if other.relative_error != self.relative_error:
            raise ReproError(
                "cannot merge sketches with different relative errors "
                f"({self.relative_error} vs {other.relative_error})"
            )
        merged = QuantileSketch(self.relative_error)
        merged.count = self.count + other.count
        merged.total = self.total + other.total
        for source in (self, other):
            if source.minimum is not None:
                merged.minimum = (
                    source.minimum
                    if merged.minimum is None
                    else min(merged.minimum, source.minimum)
                )
            if source.maximum is not None:
                merged.maximum = (
                    source.maximum
                    if merged.maximum is None
                    else max(merged.maximum, source.maximum)
                )
            for index, bucket_count in source.buckets.items():
                merged.buckets[index] = merged.buckets.get(index, 0) + bucket_count
        return merged

    def snapshot(self) -> dict:
        """A JSON-ready dump: summary stats, quantiles and raw buckets."""
        return {
            "relative_error": self.relative_error,
            "count": self.count,
            "sum": self.total,
            "mean": self.mean(),
            "min": self.minimum,
            "max": self.maximum,
            "quantiles": self.quantiles(),
            "buckets": {str(index): count for index, count in sorted(self.buckets.items())},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`snapshot` output."""
        sketch = cls(snapshot["relative_error"])
        sketch.count = int(snapshot["count"])
        sketch.total = float(snapshot["sum"])
        sketch.minimum = snapshot["min"]
        sketch.maximum = snapshot["max"]
        sketch.buckets = {int(index): int(count) for index, count in snapshot["buckets"].items()}
        return sketch
