"""Persistent warm worker pools.

The sharded engine's :class:`~repro.search.sharded.ProcessExpansionBackend`
pays a full ``fork`` + pool-teardown cycle per exploration; experiment
sweeps pay it once per sweep *point*.  A :class:`WorkerPool` amortises
that cost: fork-based workers are spawned **once per context** — a
``(key, function)`` pair such as one case study's successor closure, or
one sweep's measure function — and stay warm across successive
explorations and sweeps.  Contexts are health-checked and crashed
workers are respawned lazily, with their in-flight tasks resubmitted, so
a killed worker never loses results.

The pool executes *pure* functions: a task may be executed more than
once (after a crash, or when a timeout races completion), and the first
completion wins.  All exploration and measurement functions in this
library are deterministic, so re-execution is invisible.

Crash-safety shapes the plumbing: every worker owns a **private pair of
pipes** (tasks in, results out) with exactly one reader and one writer
each, and the coordinator dispatches **one task at a time** per worker.
There are no shared queues and therefore no shared locks — a worker
SIGKILLed at any moment (even mid-``recv``) cannot poison
synchronisation state for its siblings or its replacement, and the task
it was running is precisely known and re-dispatched.  (A naive shared
``multiprocessing.Queue`` deadlocks here: a reader killed inside
``get()`` dies holding the queue's reader lock.)

Two context kinds share one API (``submit`` / ``events``):

* :class:`ProcessWorkerContext` — fork-based worker processes; the
  context function is inherited through fork (no pickling of systems or
  closures), payloads and results cross the pipes pickled.
* :class:`SerialWorkerContext` — the deterministic in-process fallback,
  used when fork is unavailable or one worker was requested.  Results
  are bit-identical either way: the sharded engine's replay (and the
  scheduler's grid ordering) fix the result independently of *where*
  work ran.

``WorkerPool.expansion_backend`` adapts a context to the expansion
backend protocol of :class:`~repro.search.sharded.ShardedEngine`
(``expand``/``close``); ``close()`` on the adapter *releases* the
context (it stays warm in the pool) instead of tearing workers down —
only :meth:`WorkerPool.shutdown` does that.

Expansion contexts that fork processes also lease a shared-memory state
store (:mod:`repro.search.shm_interning`): its segment name is baked
into the workers at fork time, each worker owns one writer slot (slot
``index + 1``; crash-respawned replacements re-attach to the same slot),
and the segment is unlinked exactly when the context dies —
``release()``, ``close()``/``shutdown()``, the last auto-key lease drop,
or the pid-guarded GC finalizer.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import weakref
from collections import deque
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Iterable, Iterator

from repro.errors import WorkerPoolError
from repro.obs.metrics import resolve_metrics
from repro.search.shm_interning import (
    EncodedExpansion,
    SharedStateStore,
    set_process_writer_slot,
    shared_memory_available,
)
from repro.search.sharded import (
    _drain_batches,
    expand_shared_batch,
    process_backend_available,
    usable_cpu_count,
)

__all__ = [
    "DEFAULT_POOL_WORKERS",
    "PooledExpansionBackend",
    "ProcessWorkerContext",
    "SerialWorkerContext",
    "WorkerPool",
]

DEFAULT_POOL_WORKERS = max(1, min(4, usable_cpu_count()))

# How long one coordinator wait may block before it re-checks worker
# health and per-task deadlines.
_POLL_SECONDS = 0.05


def _worker_main(fn: Callable, task_rx, result_tx, writer_slot: int | None = None) -> None:
    """The body of one warm worker process.

    Serves ``(task_id, payload)`` items from its private task pipe until
    the ``None`` shutdown sentinel (or pipe EOF) arrives, answering
    ``(task_id, value, error)`` on its private result pipe.

    ``writer_slot`` is the shared-state-store slot this process may
    append to (one slot per worker index, so slots are single-writer
    even across crash-respawn generations).
    """
    if writer_slot is not None:
        set_process_writer_slot(writer_slot)
    while True:
        try:
            item = task_rx.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        task_id, payload = item
        try:
            value = fn(payload)
            message = (task_id, value, None)
        except BaseException as error:  # noqa: BLE001 - the worker must survive task failures
            message = (task_id, None, f"{type(error).__name__}: {error}")
        try:
            result_tx.send(message)
        except (BrokenPipeError, OSError):
            break  # the coordinator is gone


class _Worker:
    """One worker process plus its private pipes and dispatch state."""

    __slots__ = ("process", "task_tx", "result_rx", "current", "sent_at")

    def __init__(self, fn: Callable, mp_context, writer_slot: int | None = None) -> None:
        task_rx, self.task_tx = mp_context.Pipe(duplex=False)
        self.result_rx, result_tx = mp_context.Pipe(duplex=False)
        self.process = mp_context.Process(
            target=_worker_main, args=(fn, task_rx, result_tx, writer_slot), daemon=True
        )
        self.process.start()
        # The parent's copies of the child ends must be closed so the
        # result pipe reports EOF when the worker dies.
        task_rx.close()
        result_tx.close()
        self.current: tuple[int, Any] | None = None  # (task_id, payload) in flight
        self.sent_at = 0.0

    def assign(self, task: tuple[int, Any]) -> None:
        self.current = task
        self.sent_at = time.monotonic()
        self.task_tx.send(task)

    def discard(self) -> None:
        """Close pipes and reap the process (it must already be dead/stopping)."""
        for connection in (self.task_tx, self.result_rx):
            try:
                connection.close()
            except OSError:
                pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=1.0)


class ProcessWorkerContext:
    """One warm fork-based worker group bound to a single pure function.

    ``metrics=`` accepts a :class:`repro.obs.MetricsRegistry`; ``None``
    resolves to the process-wide registry at each :meth:`events` drain.
    All measurement is coordinator-side — dispatch latency from the
    assign timestamps the context already keeps, respawns from
    :meth:`ensure_alive`, timeouts from the expiry path — so nothing
    extra ever crosses the worker pipes.
    """

    kind = "process"

    def __init__(self, key: Any, fn: Callable, workers: int, mp_context, metrics=None) -> None:
        if workers < 1:
            raise WorkerPoolError("a worker context needs at least one worker")
        self.key = key
        self._fn = fn
        self._mp = mp_context
        self._metrics = metrics
        self._workers: list[_Worker] = []
        self._next_task_id = 0
        self._backlog: deque[tuple[int, Any]] = deque()  # submitted, not dispatched
        self._pending: dict[int, Any] = {}  # task_id -> payload (until done)
        self._closed = False
        self.grow(workers)

    # -- worker lifecycle ------------------------------------------------------

    def grow(self, workers: int) -> None:
        """Ensure at least ``workers`` live workers (never shrinks)."""
        self.ensure_alive()
        while len(self._workers) < workers:
            # Writer slot = worker index + 1 (slot 0 is the coordinator),
            # so shared-store appends stay single-writer per slot.
            self._workers.append(
                _Worker(self._fn, self._mp, writer_slot=len(self._workers) + 1)
            )

    def ensure_alive(self) -> list[int]:
        """Replace dead workers; returns the pids that had died.

        A dead worker's in-flight task goes back to the front of the
        backlog, so a crash costs a re-execution, never a lost result.
        The replacement inherits the dead worker's index and therefore
        its shared-store writer slot: it re-attaches the same segment,
        recovers the committed cursor and overwrites any unpublished
        tail the crash left behind.
        """
        dead_pids = []
        for index, worker in enumerate(self._workers):
            if not worker.process.is_alive():
                dead_pids.append(worker.process.pid)
                if worker.current is not None and worker.current[0] in self._pending:
                    self._backlog.appendleft(worker.current)
                worker.discard()
                self._workers[index] = _Worker(self._fn, self._mp, writer_slot=index + 1)
        if dead_pids:
            resolve_metrics(self._metrics).counter("pool_respawns_total").inc(len(dead_pids))
        return dead_pids

    def healthy(self) -> bool:
        """Whether every worker of the context is currently alive."""
        return bool(self._workers) and all(
            worker.process.is_alive() for worker in self._workers
        )

    def pids(self) -> tuple[int, ...]:
        """The pids of the live workers (sorted, for reuse assertions)."""
        return tuple(
            sorted(worker.process.pid for worker in self._workers if worker.process.is_alive())
        )

    @property
    def size(self) -> int:
        """Number of worker processes."""
        return len(self._workers)

    # -- task execution --------------------------------------------------------

    def submit(self, payload: Any) -> int:
        """Queue one task; returns its id (results arrive via :meth:`events`)."""
        if self._closed:
            raise WorkerPoolError("cannot submit to a shut-down worker context")
        task_id = self._next_task_id
        self._next_task_id += 1
        self._pending[task_id] = payload
        self._backlog.append((task_id, payload))
        return task_id

    def reset(self) -> None:
        """Discard all outstanding bookkeeping (tasks, not workers).

        For consumers that take over a context another consumer may have
        abandoned mid-:meth:`events` (an error raised out of the event
        loop): queued tasks are dropped and results of still-running
        tasks will be filtered as stale on arrival, so the new
        consumer's results cannot be contaminated.  Task ids are never
        reused, which is what makes the stale filter sound.
        """
        self._backlog.clear()
        self._pending.clear()

    def events(self, task_timeout: float | None = None) -> Iterator[tuple[int, Any, str | None]]:
        """Yield ``(task_id, value, error)`` for every outstanding task.

        Completion order is whatever the workers produce; callers that
        need determinism order by task id (the scheduler) or replay in
        discovery order (the sharded engine).  Crashed workers are
        respawned and their tasks re-run transparently; a task running
        longer than ``task_timeout`` seconds has its worker killed and is
        reported with a ``"timeout: ..."`` error instead.
        """
        registry = resolve_metrics(self._metrics)
        record = registry if registry.enabled else None
        while self._pending:
            self.ensure_alive()
            self._dispatch()
            timed_out = self._expire(task_timeout)
            if timed_out is not None:
                if record is not None:
                    record.counter("pool_tasks_total", outcome="timeout").inc()
                yield timed_out
                continue
            ready = connection_wait(
                [worker.result_rx for worker in self._workers], timeout=_POLL_SECONDS
            )
            for connection in ready:
                worker = next(w for w in self._workers if w.result_rx is connection)
                try:
                    task_id, value, error = connection.recv()
                except (EOFError, OSError):
                    continue  # worker died; the next ensure_alive() recovers its task
                worker.current = None
                if task_id in self._pending:
                    del self._pending[task_id]
                    if record is not None:
                        record.histogram("pool_dispatch_seconds").observe(
                            time.monotonic() - worker.sent_at
                        )
                        record.counter(
                            "pool_tasks_total", outcome="ok" if error is None else "error"
                        ).inc()
                    yield task_id, value, error

    def _dispatch(self) -> None:
        """Hand backlog tasks to idle workers, one in flight per worker.

        One-at-a-time dispatch keeps every pipe write paired with a
        worker blocked in ``recv``, so the coordinator never blocks
        sending while a worker blocks sending a large result back.
        """
        if not self._backlog:
            return
        for worker in self._workers:
            if not self._backlog:
                break
            if worker.current is None and worker.process.is_alive():
                task = self._backlog.popleft()
                try:
                    worker.assign(task)
                except (BrokenPipeError, OSError):
                    self._backlog.appendleft(task)
                    worker.current = None

    def _expire(self, task_timeout: float | None) -> tuple[int, Any, str] | None:
        """Kill the worker of the first over-deadline task; report the timeout."""
        if task_timeout is None:
            return None
        now = time.monotonic()
        for worker in self._workers:
            if worker.current is None or now - worker.sent_at <= task_timeout:
                continue
            task_id, _ = worker.current
            pid = worker.process.pid
            worker.current = None  # do not resubmit: the task is being reported
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
            if task_id in self._pending:
                del self._pending[task_id]
                return task_id, None, f"timeout: exceeded {task_timeout}s on worker {pid}"
        return None

    def shutdown(self) -> None:
        """Stop and join every worker; the context cannot be reused."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.task_tx.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            worker.discard()
        self._workers.clear()
        self._backlog.clear()
        self._pending.clear()


class SerialWorkerContext:
    """Deterministic in-process stand-in for :class:`ProcessWorkerContext`.

    Tasks run inline, in submission order, when :meth:`events` is
    consumed.  ``task_timeout`` cannot preempt in-process execution and
    is ignored; errors are reported through the same ``(task_id, value,
    error)`` protocol.
    """

    kind = "serial"

    def __init__(self, key: Any, fn: Callable, metrics=None) -> None:
        self.key = key
        self._fn = fn
        self._metrics = metrics
        self._queue: deque[tuple[int, Any]] = deque()
        self._next_task_id = 0
        self._closed = False

    size = 1

    def grow(self, workers: int) -> None:
        """Nothing to grow in-process."""

    def ensure_alive(self) -> list[int]:
        """The in-process context cannot crash independently."""
        return []

    def healthy(self) -> bool:
        """Always healthy (same process)."""
        return True

    def pids(self) -> tuple[int, ...]:
        """The coordinator's own pid."""
        return (os.getpid(),)

    def submit(self, payload: Any) -> int:
        """Queue one task (same contract as the process context's)."""
        # Same lifecycle contract as the process context, so misuse
        # surfaces identically on platforms without fork.
        if self._closed:
            raise WorkerPoolError("cannot submit to a shut-down worker context")
        task_id = self._next_task_id
        self._next_task_id += 1
        self._queue.append((task_id, payload))
        return task_id

    def reset(self) -> None:
        """Discard queued tasks (mirrors :meth:`ProcessWorkerContext.reset`)."""
        self._queue.clear()

    def events(self, task_timeout: float | None = None) -> Iterator[tuple[int, Any, str | None]]:
        """Run queued tasks inline, yielding ``(task_id, value, error)``.

        ``task_timeout`` cannot preempt in-process execution and is
        ignored (see the class docstring).
        """
        registry = resolve_metrics(self._metrics)
        record = registry if registry.enabled else None
        while self._queue:
            task_id, payload = self._queue.popleft()
            started = time.monotonic() if record is not None else 0.0
            try:
                value, error = self._fn(payload), None
            except Exception as failure:  # noqa: BLE001 - mirror the worker protocol
                value, error = None, f"{type(failure).__name__}: {failure}"
            if record is not None:
                record.histogram("pool_dispatch_seconds").observe(time.monotonic() - started)
                record.counter("pool_tasks_total", outcome="ok" if error is None else "error").inc()
            yield task_id, value, error

    def shutdown(self) -> None:
        """Refuse further submissions and drop queued tasks."""
        self._closed = True
        self._queue.clear()


def _expansion_fn(successors: Callable[[Any], Iterable], store_name: str | None = None) -> Callable:
    """The per-batch expansion function a pooled context executes.

    The function handles both traffic shapes, so one warm context can
    serve engines with shared interning on *and* off: classic batches
    (``(state_id, state)`` entries) expand inline and return plain
    pairs; id-only batches (3-tuple entries) resolve states through the
    shared store named at context creation and return an
    :class:`~repro.search.shm_interning.EncodedExpansion` blob.
    """

    def expand_batch(batch: list):
        if batch and len(batch[0]) == 3:
            if store_name is None:
                raise WorkerPoolError("id-only expansion batch without a shared store")
            return expand_shared_batch(successors, batch, store_name)
        return [(state_id, list(successors(state))) for state_id, state in batch]

    return expand_batch


class PooledExpansionBackend:
    """Adapter from a warm worker context to the sharded-engine backend API.

    Satisfies the same ``expand(frontiers, batch_size)`` / ``close()``
    protocol as :class:`~repro.search.sharded.ProcessExpansionBackend`.
    For contexts leased under a caller-provided semantic key,
    ``close()`` merely releases the lease — the workers stay warm in
    their :class:`WorkerPool` for the next exploration; auto-keyed
    contexts (keyed by closure identity, unreachable once the backend is
    gone) are torn down on ``close()`` or garbage collection instead.
    """

    def __init__(self, context, release_finalizer=None, store=None) -> None:
        self._context = context
        # The engine reads shared_store to decide whether this backend
        # moves ids (a SharedStateStore leased with the context) or
        # pickled states (None).
        self.shared_store = store
        # A weakref.finalize releasing the pool lease: single-fire, so
        # close() and GC cannot double-release, and detached once run —
        # a later collection can never tear down a successor context
        # re-registered under the same (reused) key.
        self._finalizer = release_finalizer

    @property
    def name(self) -> str:
        """``"pooled"`` on warm processes, ``"pooled-serial"`` on the fallback."""
        return "pooled" if self._context.kind == "process" else "pooled-serial"

    def worker_pids(self) -> tuple[int, ...]:
        """Pids of the warm workers serving this backend."""
        return self._context.pids()

    def expand(self, frontiers, batch_size: int) -> dict:
        """Expand every queued state on the warm workers; ``{state_id: [edges]}``."""
        context = self._context
        context.reset()  # shed any bookkeeping an abandoned consumer left behind
        context.ensure_alive()
        for batch in _drain_batches(frontiers, batch_size):
            context.submit(batch)
        expansions: dict = {}
        failure: str | None = None
        # Drain *every* event even when one errors: leaving tasks pending
        # would leak them into the next exploration through this context.
        for _, value, error in context.events():
            if error is not None:
                failure = failure or error
            elif failure is None:
                if isinstance(value, EncodedExpansion):
                    if self.shared_store is None:
                        raise WorkerPoolError(
                            "received an id-encoded expansion without a shared store"
                        )
                    value = self.shared_store.loads(value.payload)
                for state_id, edges in value:
                    expansions[state_id] = edges
        if failure is not None:
            raise WorkerPoolError(f"pooled successor expansion failed: {failure}")
        return expansions

    def close(self) -> None:
        """Release the lease (idempotent).

        For auto-keyed contexts this drops one lease — the context is
        torn down when the *last* backend sharing it closes; semantic
        contexts stay warm until :meth:`WorkerPool.release`/``shutdown``.
        """
        if self._finalizer is not None:
            self._finalizer()  # runs at most once, then stays detached


class WorkerPool:
    """A registry of warm worker contexts, keyed by what they compute.

    One pool instance typically lives for a whole experiment session.
    Explorations borrow expansion backends with
    :meth:`expansion_backend`; the sweep scheduler borrows generic
    contexts with :meth:`context`.  Contexts are created on first use —
    forking then, so the workers inherit the context function and
    whatever it closes over — and reused on every later request with the
    same key.  **The key must determine the function's semantics**: two
    functions registered under one key are assumed interchangeable, and
    the workers keep executing the one they were forked with.

    Args:
        workers: default worker count per context
            (``DEFAULT_POOL_WORKERS`` when omitted).
        use_processes: force (``True``) or forbid (``False``) process
            workers; default auto — processes exactly where the ``fork``
            start method exists and more than one worker is requested.
        metrics: a :class:`repro.obs.MetricsRegistry` handed to every
            context this pool creates; ``None`` (the default) resolves
            to the process-wide registry per drain, so the pool is
            uninstrumented unless one was installed.
    """

    def __init__(
        self,
        workers: int | None = None,
        use_processes: bool | None = None,
        metrics=None,
    ) -> None:
        if workers is not None and workers < 1:
            raise WorkerPoolError("the default worker count must be positive")
        self._default_workers = workers or DEFAULT_POOL_WORKERS
        self._use_processes = use_processes
        self._metrics = metrics
        self._contexts: dict = {}
        self._leases: dict = {}  # auto-keyed context -> outstanding backend leases
        self._stores: dict = {}  # context key -> SharedStateStore (same lifetime)
        self._closed = False
        # Registry mutations (context creation/upgrade, lease counting,
        # release) are serialised so concurrent sessions may share one
        # pool; reentrant because release() runs under _release_lease's
        # hold, and a GC-triggered finalizer may fire mid-creation.
        self._registry_lock = threading.RLock()
        self._finalizer = weakref.finalize(self, _shutdown_pool, self._contexts, self._stores)

    def uses_processes(self, workers: int | None = None) -> bool:
        """Whether a context with ``workers`` workers would fork processes."""
        count = workers or self._default_workers
        if self._use_processes is False:
            return False
        if not process_backend_available():
            return False
        return count > 1 or self._use_processes is True

    def context(self, key: Any, fn: Callable, workers: int | None = None):
        """The warm context registered under ``key`` (created on first use).

        An existing context is grown (never shrunk) when more workers
        are requested than it currently has; a context first created as
        the in-process fallback is upgraded to process workers when a
        later request would fork (``fn`` must match the key's semantics,
        as always).
        """
        with self._registry_lock:
            if self._closed:
                raise WorkerPoolError("the worker pool has been shut down")
            count = workers or self._default_workers
            existing = self._contexts.get(key)
            if existing is not None:
                if not (isinstance(existing, SerialWorkerContext) and self.uses_processes(count)):
                    existing.grow(count)
                    return existing
                existing.shutdown()  # upgrade: replace the serial stand-in with real workers
            if self.uses_processes(count):
                import multiprocessing

                created = ProcessWorkerContext(
                    key, fn, count, multiprocessing.get_context("fork"), metrics=self._metrics
                )
            else:
                created = SerialWorkerContext(key, fn, metrics=self._metrics)
            self._contexts[key] = created
            return created

    def expansion_backend(
        self,
        successors: Callable[[Any], Iterable],
        *,
        key: Any = None,
        workers: int | None = None,
        shared_interning: bool | None = None,
    ) -> PooledExpansionBackend:
        """Borrow a warm expansion backend for ``successors``.

        Without an explicit ``key`` the context is keyed by the identity
        of the successor callable — warm while that closure's backend
        lives (an engine, an explorer) and torn down when the backend is
        closed or garbage collected, so anonymous leases cannot
        accumulate worker processes.  Pass a semantic key such as
        ``("recency", id(system), bound)`` to share warmth across
        explorer instances over the same context instead; semantic
        contexts live until :meth:`release` or :meth:`shutdown`.

        ``shared_interning`` selects id-only expansion traffic through a
        :class:`~repro.search.shm_interning.SharedStateStore` leased
        with the context (default auto: on whenever the context forks
        worker processes and shared memory is available).  The store is
        created *with* the context — its segment name is baked into the
        forked workers — lives exactly as long as it, and is unlinked by
        :meth:`release`, :meth:`shutdown` or the lease protocol's last
        drop, so a warm context serves engines with the knob on and off
        alike.
        """
        auto = key is None
        context_key = ("expand", id(successors)) if auto else key
        with self._registry_lock:
            store = self._store_for(context_key, workers)
            backend = PooledExpansionBackend(
                self.context(
                    context_key,
                    _expansion_fn(successors, store.name if store is not None else None),
                    workers,
                ),
                store=store if shared_interning is not False else None,
            )
            if auto:
                # Auto contexts are lease-counted: several backends over the
                # same closure share one context, torn down when the last
                # lease is dropped (by close() or by garbage collection).
                self._leases[context_key] = self._leases.get(context_key, 0) + 1
                backend._finalizer = weakref.finalize(backend, self._release_lease, context_key)
        return backend

    def _store_for(self, context_key: Any, workers: int | None) -> SharedStateStore | None:
        """The shared state store living with ``context_key``'s context.

        Created eagerly whenever the context will fork processes (the
        segment name must exist before the fork bakes it into the
        workers); slab pages are allocated lazily by the kernel, so an
        unused store costs address space only.  ``None`` where processes
        or shared memory are unavailable.
        """
        count = workers or self._default_workers
        if not self.uses_processes(count) or not shared_memory_available():
            return None
        store = self._stores.get(context_key)
        if store is not None:
            return store
        # A store is only honoured when it was created *together with*
        # its context: a warm process context forked without a store has
        # store_name=None baked into its workers, so handing it a
        # late-created store would turn the graceful pickled fallback
        # into hard failures on id-only batches.
        existing = self._contexts.get(context_key)
        if existing is not None and not (
            isinstance(existing, SerialWorkerContext) and self.uses_processes(count)
        ):
            return None  # warm context without a store (or not upgrading): stay pickled
        # Slot 0 is the coordinator; headroom beyond the requested
        # worker count covers later grow() calls and crash-respawned
        # replacements (a worker whose index outruns the slots degrades
        # to read-only, which only costs inline traffic, never
        # correctness).
        slots = max(count, self._default_workers) + 3
        store = SharedStateStore.create(slots=slots)
        if store is not None:
            self._stores[context_key] = store
        return store

    def shared_store(self, key: Any) -> SharedStateStore | None:
        """The store leased with ``key``'s context, if any."""
        return self._stores.get(key)

    # -- health and lifecycle --------------------------------------------------

    def keys(self) -> tuple:
        """The keys of the currently warm contexts."""
        return tuple(self._contexts)

    def worker_pids(self, key: Any) -> tuple[int, ...]:
        """The live worker pids of the context registered under ``key``."""
        return self._context_of(key).pids()

    def health_check(self, key: Any) -> bool:
        """Whether every worker of ``key``'s context is alive (no respawn)."""
        return self._context_of(key).healthy()

    def ensure(self, key: Any) -> list[int]:
        """Respawn any dead worker of ``key``'s context; returns dead pids."""
        return self._context_of(key).ensure_alive()

    def release(self, key: Any) -> bool:
        """Tear down the context registered under ``key`` (if any).

        Unconditional — outstanding leases on an auto-keyed context are
        forfeited.  The context's shared state store (when one was
        leased with it) is unlinked after the workers stop.  Returns
        whether a context was released; tolerant of unknown keys.
        """
        with self._registry_lock:
            self._leases.pop(key, None)
            context = self._contexts.pop(key, None)
            store = self._stores.pop(key, None)
        if context is not None:
            context.shutdown()
        if store is not None:
            store.destroy()
        return context is not None

    def _release_lease(self, key: Any) -> None:
        """Drop one auto-key lease; tear the context down on the last one."""
        with self._registry_lock:
            outstanding = self._leases.get(key)
            if outstanding is None:
                return  # context already force-released or shut down
            if outstanding > 1:
                self._leases[key] = outstanding - 1
                return
        self.release(key)

    def _context_of(self, key: Any):
        context = self._contexts.get(key)
        if context is None:
            raise WorkerPoolError(f"no warm context registered under key {key!r}")
        return context

    def shutdown(self) -> None:
        """Stop every context's workers and unlink every leased segment;
        the pool cannot be reused."""
        self._closed = True
        self._finalizer.detach()
        _shutdown_pool(self._contexts, self._stores)

    def close(self) -> None:
        """Alias of :meth:`shutdown` (context-manager symmetry)."""
        self.shutdown()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def _shutdown_pool(contexts: dict, stores: dict) -> None:
    """Best-effort teardown shared by ``shutdown()`` and the GC finalizer.

    Workers stop before their segments are unlinked, so no worker ever
    observes a vanished store mid-expansion.
    """
    while contexts:
        _, context = contexts.popitem()
        try:
            context.shutdown()
        except Exception:  # noqa: BLE001 - teardown must never raise
            pass
    while stores:
        _, store = stores.popitem()
        try:
            store.destroy()
        except Exception:  # noqa: BLE001 - teardown must never raise
            pass
