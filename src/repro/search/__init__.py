"""Unified high-performance exploration engine.

This package is the single substrate behind every graph exploration in
the reproduction: reachability in the unbounded configuration graph
``C_S`` (:mod:`repro.dms.graph`), recency-bounded exploration of
``C_S^b`` (:mod:`repro.recency.explorer`), run enumeration for the model
checker, and the E9/E10/E12/E13 experiment sweeps.

Quick start::

    from repro.search import Engine, SearchLimits, RETAIN_PARENTS

    engine = Engine(
        successors=lambda conf: enumerate_b_bounded_successors(system, conf, 2),
        limits=SearchLimits(max_depth=6),
        strategy="bfs",              # or "dfs" / "best-first" + heuristic
        retention=RETAIN_PARENTS,    # or "full" / "counts-only"
    )
    witness, result = engine.search(initial, predicate)

Choosing a strategy
-------------------

* ``"bfs"`` (default) — level order; predicate search returns
  minimal-length witnesses.  Use it whenever witness minimality or the
  seed explorers' exact visit order matters.
* ``"dfs"`` — dives deep quickly; useful to find *some* witness in deep
  but narrow graphs with a small frontier.
* ``"best-first"`` — orders the frontier by a user heuristic
  ``heuristic(state, depth)``; use for guided search towards a target.

Choosing a memory mode
----------------------

* ``"full"`` — keep every generated edge; required by callers that
  post-process the edge list.
* ``"parents-only"`` — keep one spanning-tree edge per state, enough for
  witness reconstruction (the default for reachability queries).
* ``"counts-only"`` — keep only counters; the mode for state-space size
  sweeps over large graphs.

Sharded exploration
-------------------

:class:`~repro.search.sharded.ShardedEngine` runs the ``"bfs"`` strategy
sharded: interned ids are hash-partitioned across per-level frontiers
with work stealing, successor expansion is batched across worker
processes (``workers > 1`` uses a fork-based multiprocessing pool, with
a deterministic serial fallback), and per-shard partial results are
folded with the associative :meth:`~repro.search.engine.SearchResult.merge`.
Results are bit-identical to the single-shard engine's — including
witnesses and truncation flags (any truncated shard truncates the
merge, which reachability reports as ``UNKNOWN``, never ``FAILS``).

Process-backed expansion traffic is **id-only** by default: states are
interned into a shared-memory slab
(:mod:`repro.search.shm_interning`) and only intern ids cross the
worker pipes, deserializing each configuration at most once per
process.  The ``shared_interning=`` knob forces it on/off; hosts
without ``multiprocessing.shared_memory`` fall back to pickled traffic
with identical results.

See ``src/repro/search/README.md`` for the full design notes,
``docs/architecture.md`` for the layering and sharding design, and
:mod:`repro.search.baseline` for the frozen seed implementations used by
the differential tests and the E13 benchmark.
"""

from repro.errors import SearchError
from repro.search.engine import (
    RETAIN_COUNTS,
    RETAIN_FULL,
    RETAIN_PARENTS,
    RETENTION_MODES,
    Engine,
    SearchLimits,
    SearchResult,
    iterate_paths,
)
from repro.search.frontier import (
    BestFirstFrontier,
    BFSFrontier,
    DFSFrontier,
    Frontier,
    make_frontier,
)
from repro.search.interning import InternTable
from repro.search.shm_interning import (
    SharedInternTable,
    SharedStateStore,
    shared_memory_available,
)
from repro.search.sharded import (
    ProcessExpansionBackend,
    SerialExpansionBackend,
    ShardedEngine,
    ShardFrontiers,
    process_backend_available,
    shard_of,
    usable_cpu_count,
)

__all__ = [
    "RETAIN_COUNTS",
    "RETAIN_FULL",
    "RETAIN_PARENTS",
    "RETENTION_MODES",
    "BestFirstFrontier",
    "BFSFrontier",
    "DFSFrontier",
    "Engine",
    "Frontier",
    "InternTable",
    "ProcessExpansionBackend",
    "SearchError",
    "SearchLimits",
    "SearchResult",
    "SerialExpansionBackend",
    "ShardFrontiers",
    "ShardedEngine",
    "SharedInternTable",
    "SharedStateStore",
    "iterate_paths",
    "make_frontier",
    "process_backend_available",
    "shard_of",
    "shared_memory_available",
    "usable_cpu_count",
]
