"""Documentation checks run by the CI docs job.

Three checks, all against the files as committed:

1. **Executable snippets** — every fenced ``python`` block in the files
   listed in :data:`SNIPPET_FILES` (the README quickstart, the
   distributed deployment note, the fuzzing guide and the observability
   guide) is executed, in order, in one namespace
   per file — so no documented snippet can drift from the real API.
2. **Link check** — every relative Markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file or directory (external
   ``http(s)`` links and pure anchors are skipped; fragment suffixes are
   stripped).
3. **API docstring audit** — every public module, class, function,
   method and property of the packages in :data:`AUDITED_PACKAGES`
   (currently ``repro.api``, ``repro.search``, ``repro.runtime``,
   ``repro.distributed``, ``repro.service``, ``repro.store``,
   ``repro.fuzz``, ``repro.obs`` and ``repro.loadgen``) must carry a
   docstring.  A public
   name without one fails the job, so the engine
   and runtime surface cannot silently grow undocumented API.

Run locally with::

    PYTHONPATH=src python docs/check_docs.py            # everything
    PYTHONPATH=src python docs/check_docs.py --only api # one check

Exits non-zero with a per-failure report when anything is broken.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Files whose ``python`` fences are executed (repo-relative).  Snippets
# within one file share a namespace, in order; files are independent.
SNIPPET_FILES = (
    "README.md",
    "docs/distributed.md",
    "docs/fuzzing.md",
    "docs/observability.md",
    "docs/service.md",
)

# Packages whose public API must be fully documented.
AUDITED_PACKAGES = (
    "repro.api",
    "repro.search",
    "repro.runtime",
    "repro.distributed",
    "repro.service",
    "repro.store",
    "repro.fuzz",
    "repro.obs",
    "repro.loadgen",
)

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
# Markdown links, ignoring images; group 1 is the target.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def run_python_snippets(path: Path) -> list[str]:
    """Execute every ```python block of ``path``; returns failure messages."""
    failures = []
    namespace: dict = {"__name__": "__doc_snippet__"}
    for index, match in enumerate(FENCE.finditer(path.read_text()), start=1):
        snippet = match.group(1)
        try:
            exec(compile(snippet, f"{path.name}#snippet{index}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report, don't crash the checker
            failures.append(f"{path.name} python snippet #{index} raised {error!r}")
    return failures


def check_links(path: Path) -> list[str]:
    """Verify the relative links of one Markdown file; returns failures."""
    failures = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            failures.append(f"{path.relative_to(REPO)}: broken link -> {target}")
    return failures


def _public_names(module) -> list[str]:
    """The module's public surface: ``__all__``, else non-underscore names."""
    declared = getattr(module, "__all__", None)
    if declared is not None:
        return list(declared)
    return [name for name in vars(module) if not name.startswith("_")]


def _audit_member(owner: str, name: str, value) -> list[str]:
    """Docstring failures of one public class attribute."""
    if isinstance(value, property):
        documented = bool(value.fget and value.fget.__doc__)
    elif isinstance(value, (staticmethod, classmethod)):
        documented = bool(value.__func__.__doc__)
    elif inspect.isfunction(value):
        documented = bool(value.__doc__)
    else:
        return []  # plain class attributes need no docstring
    if documented:
        return []
    return [f"{owner}.{name}: public member without a docstring"]


def audit_module(module) -> list[str]:
    """Docstring failures of one module's public API."""
    failures = []
    if not (module.__doc__ or "").strip():
        failures.append(f"{module.__name__}: module without a docstring")
    for name in _public_names(module):
        value = getattr(module, name, None)
        if value is None or inspect.ismodule(value):
            continue
        qualified = f"{module.__name__}.{name}"
        if inspect.isclass(value):
            if value.__module__ != module.__name__:
                continue  # re-export; audited where it is defined
            if not (value.__doc__ or "").strip():
                failures.append(f"{qualified}: class without a docstring")
            for member_name, member in vars(value).items():
                if member_name.startswith("_"):
                    continue  # dunders and private helpers
                failures.extend(_audit_member(qualified, member_name, member))
        elif inspect.isfunction(value):
            if value.__module__ != module.__name__:
                continue
            if not (value.__doc__ or "").strip():
                failures.append(f"{qualified}: function without a docstring")
    return failures


def audit_packages(packages=AUDITED_PACKAGES) -> list[str]:
    """Docstring failures across every module of the audited packages."""
    failures = []
    for package_name in packages:
        package = importlib.import_module(package_name)
        failures.extend(audit_module(package))
        for info in pkgutil.iter_modules(package.__path__):
            module = importlib.import_module(f"{package_name}.{info.name}")
            failures.extend(audit_module(module))
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--only",
        choices=("snippets", "links", "api"),
        default=None,
        help="run a single check instead of all three",
    )
    arguments = parser.parse_args(argv)
    failures: list[str] = []
    if arguments.only in (None, "snippets"):
        for name in SNIPPET_FILES:
            path = REPO / name
            if path.exists():
                failures += run_python_snippets(path)
            else:
                failures.append(f"{name} is missing (listed in SNIPPET_FILES)")
    if arguments.only in (None, "links"):
        for markdown in [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]:
            if markdown.exists():
                failures += check_links(markdown)
    if arguments.only in (None, "api"):
        failures += audit_packages()
    if failures:
        print(f"{len(failures)} documentation check(s) failed:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        "documentation checks passed (snippets executed, links resolved, "
        "public API documented)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
