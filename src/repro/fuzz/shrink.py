"""Greedy minimisation of disagreeing fuzz instances.

When the differential oracle flags an instance, the raw generated system
is rarely the story — a 4-action system with layered guards hides the
one interaction that actually diverges.  :func:`shrink_instance` walks a
deterministic, ``PYTHONHASHSEED``-independent candidate sequence (drop
an action, a guard conjunct, an update fact, an initial fact, a
constraint) and keeps any reduction under which the caller's predicate
still reports the failure, iterating to a fixpoint.  The result is the
instance persisted into a repro file (:mod:`repro.fuzz.corpus`) and
committed next to the test that replays it.

Determinism matters here: candidate order is the declaration order of
actions/conjuncts plus ``repr``-sorted fact and constraint lists (facts
live in frozensets whose iteration order depends on the hash seed), so
the same disagreement always shrinks to the same minimal repro.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.database.constraints import ConstraintSet
from repro.database.instance import DatabaseInstance
from repro.dms.action import Action
from repro.dms.system import DMS
from repro.errors import ReproError
from repro.fol.syntax import And, Query, TrueQuery, conjunction
from repro.fuzz.generator import FuzzInstance

__all__ = ["shrink_instance", "shrink_candidates"]


def _flatten_conjuncts(query: Query) -> list[Query]:
    """The conjunct list of a (possibly nested) conjunction."""
    if isinstance(query, And):
        return _flatten_conjuncts(query.left) + _flatten_conjuncts(query.right)
    return [query]


def _with_guard(action: Action, schema, guard: Query) -> Action:
    # Well-formedness ties the parameter list to the guard's free
    # variables exactly, so a reduced guard narrows the parameters too;
    # Action.create then rejects the candidate if Del/Add still mention
    # a dropped parameter.
    free = guard.free_variables()
    return Action.create(
        action.name,
        schema,
        parameters=tuple(p for p in action.parameters if p in free),
        fresh=tuple(action.fresh),
        guard=guard,
        delete=sorted(action.deletions.facts, key=repr),
        add=sorted(action.additions.facts, key=repr),
    )


def _with_update(action: Action, schema, delete: list, add: list) -> Action:
    # Every fresh variable must occur in Add, so dropping an Add fact
    # narrows the fresh list to the variables that still occur.
    add_variables = {arg for fact in add for arg in fact.arguments}
    return Action.create(
        action.name,
        schema,
        parameters=tuple(action.parameters),
        fresh=tuple(v for v in action.fresh if v in add_variables),
        guard=action.guard,
        delete=delete,
        add=add,
    )


def _rebuild(system: DMS, *, actions=None, initial=None, constraints=None) -> DMS:
    return DMS.create(
        system.schema,
        system.initial_instance if initial is None else initial,
        list(system.actions) if actions is None else actions,
        constraints=ConstraintSet(system.constraints) if constraints is None else constraints,
        name=system.name,
        require_empty_initial_adom=system.require_empty_initial_adom,
    )


def shrink_candidates(system: DMS) -> Iterator[DMS]:
    """Yield every one-step reduction of the system, in deterministic order.

    Candidates that fail well-formedness validation (e.g. a guard losing
    the atom that grounds a parameter) are silently skipped — shrinking
    must only ever move between valid systems.
    """
    schema = system.schema
    actions = list(system.actions)
    # 1. Drop one whole action.
    for index in range(len(actions)):
        remaining = actions[:index] + actions[index + 1 :]
        try:
            yield _rebuild(system, actions=remaining)
        except ReproError:
            continue
    # 2. Drop one guard conjunct (flattening nested conjunctions).
    for index, action in enumerate(actions):
        conjuncts = _flatten_conjuncts(action.guard)
        if len(conjuncts) == 1 and isinstance(conjuncts[0], TrueQuery):
            continue
        for drop in range(len(conjuncts)):
            rest = conjuncts[:drop] + conjuncts[drop + 1 :]
            guard: Query = conjunction(*rest) if rest else TrueQuery()
            try:
                reduced = _with_guard(action, schema, guard)
                yield _rebuild(system, actions=actions[:index] + [reduced] + actions[index + 1 :])
            except ReproError:
                continue
    # 3. Drop one Add/Del fact of one action.
    for index, action in enumerate(actions):
        delete = sorted(action.deletions.facts, key=repr)
        add = sorted(action.additions.facts, key=repr)
        for drop in range(len(delete)):
            try:
                reduced = _with_update(action, schema, delete[:drop] + delete[drop + 1 :], add)
                yield _rebuild(system, actions=actions[:index] + [reduced] + actions[index + 1 :])
            except ReproError:
                continue
        for drop in range(len(add)):
            try:
                reduced = _with_update(action, schema, delete, add[:drop] + add[drop + 1 :])
                yield _rebuild(system, actions=actions[:index] + [reduced] + actions[index + 1 :])
            except ReproError:
                continue
    # 4. Drop one initial fact.
    initial_facts = sorted(system.initial_instance.facts, key=repr)
    for drop in range(len(initial_facts)):
        remaining_facts = initial_facts[:drop] + initial_facts[drop + 1 :]
        try:
            yield _rebuild(system, initial=DatabaseInstance(schema, remaining_facts))
        except ReproError:
            continue
    # 5. Drop one constraint.
    constraints = sorted(system.constraints, key=repr)
    for drop in range(len(constraints)):
        remaining_constraints = constraints[:drop] + constraints[drop + 1 :]
        try:
            yield _rebuild(system, constraints=ConstraintSet(remaining_constraints))
        except ReproError:
            continue


def shrink_instance(
    instance: FuzzInstance,
    still_failing: Callable[[FuzzInstance], bool],
    max_rounds: int = 100,
) -> FuzzInstance:
    """Greedily minimise an instance while ``still_failing`` stays true.

    Each round scans the one-step reductions of the current system and
    takes the *first* one that preserves the failure, then restarts the
    scan; the process stops at a fixpoint (no reduction preserves the
    failure) or after ``max_rounds`` accepted reductions.  The input
    instance is returned unchanged when the predicate does not hold on
    it — shrinking only ever preserves, never introduces, the failure.
    """
    if not still_failing(instance):
        return instance
    current = instance
    for _ in range(max_rounds):
        for candidate_system in shrink_candidates(current.system):
            candidate = current.with_system(candidate_system)
            if still_failing(candidate):
                current = candidate
                break
        else:
            break
    return current
