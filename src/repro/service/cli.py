"""Command-line entry point: serve the verification service.

``python -m repro.service`` builds the app and hands it to ``uvicorn``.
The server is the only piece that needs a third-party package — the
``repro[service]`` extra — so its absence is reported as a clean,
actionable error instead of a bare import traceback.  ``--check``
exercises the app in-process (lifespan + a health request) and exits;
it needs no extra dependencies at all.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.app import ServiceConfig, create_app

__all__ = ["main"]


def _load_uvicorn():
    """Import uvicorn, translating absence into an actionable message."""
    try:
        import uvicorn
    except ImportError as error:
        raise ImportError(
            "serving over HTTP needs an ASGI server; install the service extra "
            "with: pip install 'repro[service]' (or just uvicorn). "
            "The app itself has no extra dependencies — use "
            "repro.service.testing.AsgiClient for in-process use."
        ) from error
    return uvicorn


def main(argv: list[str] | None = None) -> int:
    """Run the service CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve reachability/convergence verification over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8000, help="bind port")
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="admission-control capacity (429 beyond it)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-request wall-clock budget in seconds",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result-store directory (default: the REPRO_STORE environment variable)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="start the app in-process, hit /healthz, print the reply and exit",
    )
    args = parser.parse_args(argv)

    config = ServiceConfig(
        max_concurrent=args.max_concurrent,
        default_timeout=args.timeout,
        store=args.store,
    )
    if args.check:
        from repro.service.testing import AsgiClient

        with AsgiClient(create_app(config)) as client:
            reply = client.get("/healthz")
            print(json.dumps(reply.json(), indent=2, sort_keys=True))
            return 0 if reply.status == 200 else 1

    uvicorn = _load_uvicorn()
    uvicorn.run(create_app(config), host=args.host, port=args.port)
    return 0


if __name__ == "__main__":
    sys.exit(main())
