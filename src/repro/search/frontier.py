"""Pluggable frontier strategies for the exploration engine.

A frontier holds ``(state_id, depth)`` entries and decides the visit
order:

* ``"bfs"`` — FIFO; states are visited level by level in discovery
  order.  This is the only strategy for which predicate search returns a
  *minimal-length* witness.
* ``"dfs"`` — LIFO; the most recently discovered state is expanded
  first, so the engine dives along one branch before backtracking.
* ``"best-first"`` — a binary heap ordered by a user heuristic
  ``heuristic(state, depth) -> comparable``; ties are broken FIFO, so
  equal-priority states keep their discovery order.

Frontiers only store ids and depths; the state object is passed to
``push`` solely so the best-first heuristic can inspect it.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable

from repro.errors import SearchError

__all__ = [
    "BestFirstFrontier",
    "BFSFrontier",
    "DFSFrontier",
    "Frontier",
    "make_frontier",
]


class Frontier:
    """Interface of a frontier strategy (see module docstring)."""

    def push(self, state_id: int, depth: int, state: Any) -> None:
        """Add an entry; ``state`` is only inspected by best-first heuristics."""
        raise NotImplementedError

    def pop(self) -> tuple[int, int]:
        """Remove and return the next ``(state_id, depth)`` entry."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __bool__(self) -> bool:
        return len(self) > 0


class BFSFrontier(Frontier):
    """First-in first-out: breadth-first, level order."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: deque[tuple[int, int]] = deque()

    def push(self, state_id: int, depth: int, state: Any) -> None:
        """Enqueue at the back (``state`` is ignored)."""
        self._queue.append((state_id, depth))

    def pop(self) -> tuple[int, int]:
        """Dequeue the oldest entry (level order)."""
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class DFSFrontier(Frontier):
    """Last-in first-out: depth-first."""

    __slots__ = ("_stack",)

    def __init__(self) -> None:
        self._stack: list[tuple[int, int]] = []

    def push(self, state_id: int, depth: int, state: Any) -> None:
        """Push onto the stack (``state`` is ignored)."""
        self._stack.append((state_id, depth))

    def pop(self) -> tuple[int, int]:
        """Pop the most recently pushed entry."""
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)


class BestFirstFrontier(Frontier):
    """Heap ordered by ``heuristic(state, depth)``, FIFO among ties."""

    __slots__ = ("_heap", "_heuristic", "_counter")

    def __init__(self, heuristic: Callable[[Any, int], Any]) -> None:
        self._heap: list[tuple[Any, int, int, int]] = []
        self._heuristic = heuristic
        self._counter = 0

    def push(self, state_id: int, depth: int, state: Any) -> None:
        """Insert with priority ``heuristic(state, depth)``; FIFO among ties."""
        priority = self._heuristic(state, depth)
        heapq.heappush(self._heap, (priority, self._counter, state_id, depth))
        self._counter += 1

    def pop(self) -> tuple[int, int]:
        """Remove the minimum-priority entry."""
        _, _, state_id, depth = heapq.heappop(self._heap)
        return state_id, depth

    def __len__(self) -> int:
        return len(self._heap)


def make_frontier(strategy: str, heuristic: Callable[[Any, int], Any] | None = None) -> Frontier:
    """Instantiate the frontier for a strategy name.

    Raises:
        ReproError: on an unknown strategy, or when ``best-first`` is
            requested without a heuristic.
    """
    if strategy == "bfs":
        return BFSFrontier()
    if strategy == "dfs":
        return DFSFrontier()
    if strategy == "best-first":
        if heuristic is None:
            raise SearchError("the best-first strategy requires a heuristic(state, depth)")
        return BestFirstFrontier(heuristic)
    raise SearchError(
        f"unknown frontier strategy {strategy!r}; expected 'bfs', 'dfs' or 'best-first'"
    )
