"""Integration tests exercising the full pipeline across subsystems.

Each test stitches several packages together the way a user of the
library (or the paper's proof) would: build a system, execute it under
the bounded semantics, abstract, encode, validate, translate and check.
"""

import pytest

from repro.dms.builder import DMSBuilder
from repro.encoding.analyzer import EncodingAnalyzer
from repro.encoding.encoder import encode_run
from repro.encoding.translate import evaluate_specification_via_encoding
from repro.fol.parser import parse_query
from repro.modelcheck.checker import RecencyBoundedModelChecker
from repro.modelcheck.reachability import query_reachable_bounded
from repro.modelcheck.result import Verdict
from repro.msofo.patterns import response_formula, safety_formula
from repro.msofo.semantics import holds_on_run
from repro.recency.abstraction import abstract_run
from repro.recency.concretize import concretize_word
from repro.recency.explorer import iterate_b_bounded_runs
from repro.transforms.freshness import weaken_freshness
from repro.transforms.overlapping import standard_substitution
from repro.workloads.generators import RandomDMSParameters, random_dms


@pytest.fixture
def order_system():
    """Orders are created, paid and archived; payment requires the order to be open."""
    builder = DMSBuilder("orders")
    builder.relations(("OpenOrder", 1), ("Paid", 1), ("Archived", 1), ("shop", 0))
    builder.initially("shop")
    builder.action("create", fresh=("o",), guard="shop", add=[("OpenOrder", "o")])
    builder.action(
        "pay", parameters=("o",), guard="OpenOrder(o)", delete=[], add=[("Paid", "o")]
    )
    builder.action(
        "archive",
        parameters=("o",),
        guard="OpenOrder(o) & Paid(o)",
        delete=[("OpenOrder", "o"), ("Paid", "o")],
        add=[("Archived", "o")],
    )
    return builder.build()


def test_full_pipeline_on_order_system(order_system):
    """Execute → abstract → concretise → encode → validate → translate → agree."""
    bound = 2
    runs = [run for run in iterate_b_bounded_runs(order_system, bound, depth=4, max_runs=30) if run.steps]
    assert runs
    specification = safety_formula(parse_query("exists o. Archived(o) & OpenOrder(o)"))
    for run in runs:
        word = abstract_run(run)
        canonical = concretize_word(order_system, word, bound)
        assert canonical.instances() == run.instances()
        encoding = encode_run(order_system, run)
        analyzer = EncodingAnalyzer(order_system, bound, encoding)
        assert analyzer.check_validity().valid
        from repro.dms.run import Run

        truncated = Run(run.instances()[:-1])
        assert holds_on_run(specification, truncated) == evaluate_specification_via_encoding(
            specification, analyzer
        )


def test_model_checking_agrees_with_reachability(order_system):
    """'¬∃o.Archived(o)' fails exactly when an archived order is reachable."""
    bound, depth = 2, 4
    reach = query_reachable_bounded(
        order_system, parse_query("exists o. Archived(o)"), bound=bound, max_depth=depth
    )
    checker = RecencyBoundedModelChecker(order_system, bound=bound, depth=depth)
    never_archived = checker.check(safety_formula(parse_query("exists o. Archived(o)")))
    assert reach.found
    assert never_archived.verdict is Verdict.FAILS
    counterexample_actions = [step.action.name for step in never_archived.counterexample.steps]
    assert counterexample_actions[-1] == "archive"


def test_response_property_over_bounded_runs(order_system):
    """Every archived order was paid at some strictly earlier position."""
    checker = RecencyBoundedModelChecker(order_system, bound=2, depth=4)
    paid_before_archive = response_formula(
        parse_query("exists o. Paid(o)"), parse_query("exists o. Archived(o)")
    )
    # This is a liveness-style property; on bounded prefixes it may be violated
    # (an order can be paid without ever being archived within the horizon).
    result = checker.check(paid_before_archive)
    assert result.verdict in (Verdict.FAILS, Verdict.UNKNOWN, Verdict.HOLDS)
    # The converse safety formulation holds: an archive step is always preceded by payment.
    safety = safety_formula(parse_query("exists o. Archived(o) & OpenOrder(o)"))
    assert not checker.check(safety).fails


def test_transformed_systems_stay_checkable(order_system):
    """The Appendix F.2/F.3 transformations produce systems the checker still handles."""
    for transformed in (standard_substitution(order_system), weaken_freshness(order_system)):
        result = query_reachable_bounded(
            transformed, parse_query("exists o. Archived(o)"), bound=2, max_depth=4
        )
        assert result.found


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_random_systems_full_cross_validation(seed):
    """Random systems: every explored bounded run encodes validly and round-trips."""
    system = random_dms(seed, RandomDMSParameters(relations=2, max_arity=2, actions=3, max_fresh=2))
    bound = 2
    for run in iterate_b_bounded_runs(system, bound, depth=2, max_runs=10):
        if not run.steps:
            continue
        analyzer = EncodingAnalyzer(system, bound, encode_run(system, run))
        assert analyzer.check_validity().valid
        assert analyzer.symbolic_word() == abstract_run(run)
