"""Seeded traffic replay over the service layer (ROADMAP: sustained load).

The fuzzer (PR 7) gave scenario diversity and the service (PR 9) gave a
streaming API; this package closes the remaining gap — heavy,
realistic, *replayable* traffic.  Everything runs in-process over
:class:`repro.service.testing.AsgiClient` (no sockets, no
dependencies), and every workload derives from a seed, so a load run is
a reproducible experiment rather than a one-off:

* :mod:`repro.loadgen.sketch` — the mergeable log-bucketed
  :class:`QuantileSketch` behind every latency distribution;
* :mod:`repro.loadgen.vocabulary` — the query-template vocabulary
  (§6 case studies, optionally fuzz-corpus instances);
* :mod:`repro.loadgen.script` — seeded per-user session scripts and
  their byte-deterministic JSONL traces;
* :mod:`repro.loadgen.driver` — closed-loop and open-loop replay with
  concurrency ramps, recording latency/throughput/429/504 rates and
  SSE time-to-``ready``/time-to-``final``;
* :mod:`repro.loadgen.invariants` — the soak audit: verdict parity
  with direct library calls, metrics reconciliation, post-chaos
  health;
* :mod:`repro.loadgen.cli` — the ``python -m repro.loadgen`` driver
  (``--seed``, ``--users``, ``--duration``, ``--ramp``, ``--replay``).

See the "Load testing" section of ``docs/service.md`` for a worked
example; harness experiment E22 and ``benchmarks/bench_e22_loadgen.py``
gate sustained throughput and the p99 ceiling.
"""

from repro.loadgen.driver import LoadReport, RequestOutcome, run_closed_loop, run_open_loop
from repro.loadgen.invariants import InvariantReport, check_invariants, request_totals
from repro.loadgen.script import (
    PlannedRequest,
    SessionScript,
    generate_sessions,
    read_trace,
    trace_lines,
    write_trace,
)
from repro.loadgen.sketch import QuantileSketch
from repro.loadgen.vocabulary import (
    QueryTemplate,
    builtin_templates,
    vocabulary_case_studies,
    vocabulary_templates,
)

__all__ = [
    "QuantileSketch",
    "QueryTemplate",
    "builtin_templates",
    "vocabulary_templates",
    "vocabulary_case_studies",
    "PlannedRequest",
    "SessionScript",
    "generate_sessions",
    "trace_lines",
    "write_trace",
    "read_trace",
    "RequestOutcome",
    "LoadReport",
    "run_closed_loop",
    "run_open_loop",
    "InvariantReport",
    "check_invariants",
    "request_totals",
]
