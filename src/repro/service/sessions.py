"""Shared warm sessions and admission control for the service.

A :class:`SessionManager` is the service's bridge to the library: it
owns one :class:`repro.api.Session` (whose worker pool keys warm query
engines by case study and successor function, so every concurrent
request over the same ``(system, graph)`` pair shares the same warm
workers), a registry of servable case studies, and the admission
semaphore that bounds how many requests may hold an engine at once.

Requests name systems rather than shipping them: the registry maps a
case-study name to its construction function, and the built system is
cached so its content hash — and therefore its warm pool context — is
stable across requests.  Conditions arrive as a proposition name
(``"proposition"``) or as FOL(R) query text (``"condition"``, parsed by
:func:`repro.fol.parser.parse_query`).
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from repro.api.options import ExplorationOptions
from repro.api.session import Session
from repro.casestudies import (
    booking_agency_system,
    example_31_system,
    students_system,
    warehouse_system,
)
from repro.dms.system import DMS
from repro.errors import AdmissionError, ServiceError
from repro.fol.parser import parse_query
from repro.fol.syntax import Query
from repro.obs.metrics import resolve_metrics

__all__ = ["DEFAULT_CASE_STUDIES", "SessionManager"]

#: The case studies a default service serves, by request name.
DEFAULT_CASE_STUDIES: dict[str, Callable[[], DMS]] = {
    "booking": booking_agency_system,
    "example31": example_31_system,
    "students": students_system,
    "warehouse": warehouse_system,
}

#: Exploration knobs a request payload may override.
_INT_KNOBS = ("max_depth", "max_configurations", "max_steps")
_STR_KNOBS = ("strategy", "retention")


class SessionManager:
    """The service's warm session, case-study registry and admission gate.

    Args:
        case_studies: ``{name: factory}`` of servable systems (defaults
            to :data:`DEFAULT_CASE_STUDIES`).
        max_concurrent: admission-control capacity — requests holding a
            slot beyond this are rejected with
            :class:`~repro.errors.AdmissionError` (HTTP 429), never
            queued (a saturated verification service should shed load
            visibly, not build invisible backlog).
        options: default exploration options for requests that do not
            override knobs.
        store: the session's result store (path /
            :class:`repro.store.ResultStore` / ``False`` / ``None`` for
            ``REPRO_STORE``).
        pool_workers: worker count of the session's pool.
        metrics: a :class:`repro.obs.MetricsRegistry`; ``None`` resolves
            to the process-wide registry.
    """

    def __init__(
        self,
        *,
        case_studies: Mapping[str, Callable[[], DMS]] | None = None,
        max_concurrent: int = 8,
        options: ExplorationOptions | None = None,
        store=None,
        pool_workers: int | None = None,
        metrics=None,
    ) -> None:
        if max_concurrent < 1:
            raise ServiceError("max_concurrent must be positive")
        self._factories = dict(case_studies or DEFAULT_CASE_STUDIES)
        self._systems: dict[str, DMS] = {}
        self._metrics = metrics
        self.session = Session(
            options=options, store=store, pool_workers=pool_workers, metrics=metrics
        )
        self._max_concurrent = max_concurrent
        self._guard = threading.Lock()
        self._active = 0

    # -- case studies and request decoding -------------------------------------

    def case_studies(self) -> tuple[str, ...]:
        """The servable case-study names, sorted."""
        return tuple(sorted(self._factories))

    def system(self, name: str) -> DMS:
        """The (cached) system registered under ``name``.

        Caching keeps the object identity — and the content hash — of a
        case study stable, so every request over it shares one warm
        pool context.
        """
        with self._guard:
            system = self._systems.get(name)
            if system is None:
                factory = self._factories.get(name)
                if factory is None:
                    raise ServiceError(
                        f"unknown case study {name!r}; serving {sorted(self._factories)}"
                    )
                system = self._systems[name] = factory()
            return system

    def condition(self, payload: Mapping) -> Query | str:
        """The reachability condition a request payload names.

        ``"proposition"`` carries a proposition name; ``"condition"``
        carries FOL(R) query text.  Exactly one must be present.
        """
        has_query = "condition" in payload
        has_proposition = "proposition" in payload
        if has_query == has_proposition:
            raise ServiceError(
                "a query payload needs exactly one of 'condition' (FOL(R) query text) "
                "or 'proposition' (a proposition name)"
            )
        if has_proposition:
            return str(payload["proposition"])
        return parse_query(str(payload["condition"]))

    def query_options(self, payload: Mapping) -> ExplorationOptions:
        """The session defaults with the payload's knob overrides applied."""
        changes: dict = {}
        for knob in _INT_KNOBS:
            if knob in payload:
                changes[knob] = int(payload[knob])
        for knob in _STR_KNOBS:
            if knob in payload:
                changes[knob] = str(payload[knob])
        options = self.session.options
        return options.replace(**changes) if changes else options

    # -- admission control ------------------------------------------------------

    @property
    def active(self) -> int:
        """Requests currently holding an admission slot."""
        with self._guard:
            return self._active

    def acquire(self) -> None:
        """Take one admission slot or reject (never blocks).

        Raises:
            AdmissionError: at capacity (the service renders it as 429
                with a ``Retry-After`` header).
        """
        registry = resolve_metrics(self._metrics)
        with self._guard:
            if self._active >= self._max_concurrent:
                registry.counter("service_requests_total", outcome="rejected").inc()
                raise AdmissionError(
                    f"service at capacity ({self._max_concurrent} concurrent queries); retry"
                )
            self._active += 1
            registry.gauge("service_active_requests").high_water(self._active)

    def release(self) -> None:
        """Return one admission slot."""
        with self._guard:
            self._active = max(0, self._active - 1)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Close the warm session (idempotent)."""
        self.session.close()
