"""Recency-indexing abstraction and the symbolic alphabet (paper, Section 6.1).

A concrete substitution ``σ`` of an action ``α`` at a configuration is
abstracted into a *symbolic substitution* ``s`` that maps

* the ``i``-th fresh-input variable ``v_i`` to ``-i`` (condition r1), and
* every action parameter ``u`` to its recency index
  ``s(u) ∈ {0, ..., b-1}`` at the current instance (conditions r2–r3).

The finite set of pairs ``⟨α, s⟩`` is the symbolic alphabet
``symAlph_{S,b}``; ``Abstr`` maps a b-bounded extended run to the word of
its symbolic labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Mapping

from repro.dms.action import Action
from repro.dms.system import DMS
from repro.errors import RecencyError
from repro.recency.recent import recency_index
from repro.recency.semantics import RecencyBoundedRun, RecencyConfiguration

__all__ = [
    "SymbolicSubstitution",
    "SymbolicLabel",
    "symbolic_substitutions_for_action",
    "symbolic_alphabet",
    "abstract_substitution",
    "abstract_run",
]


@dataclass(frozen=True)
class SymbolicSubstitution(Mapping[str, int]):
    """A recency-indexing abstraction ``s : u⃗ ⊎ v⃗ → {-n..-1} ∪ {0..b-1}``."""

    entries: tuple[tuple[str, int], ...]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.entries]
        if len(set(names)) != len(names):
            raise RecencyError(f"symbolic substitution binds a variable twice: {self.entries}")

    @classmethod
    def of(cls, mapping: Mapping[str, int]) -> "SymbolicSubstitution":
        """Build from a plain mapping (sorted for canonicity)."""
        return cls(tuple(sorted(mapping.items())))

    # -- Mapping protocol ----------------------------------------------------

    def __getitem__(self, variable: str) -> int:
        for name, index in self.entries:
            if name == variable:
                return index
        raise RecencyError(f"symbolic substitution does not bind {variable!r}")

    def __iter__(self) -> Iterator[str]:
        return iter(name for name, _ in self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    # -- helpers ----------------------------------------------------------------

    def parameter_indices(self) -> dict[str, int]:
        """The bindings of action parameters (non-negative indices)."""
        return {name: index for name, index in self.entries if index >= 0}

    def fresh_indices(self) -> dict[str, int]:
        """The bindings of fresh-input variables (negative indices)."""
        return {name: index for name, index in self.entries if index < 0}

    def max_parameter_index(self) -> int:
        """The largest recency index used (-1 when no parameters)."""
        indices = [index for _, index in self.entries if index >= 0]
        return max(indices, default=-1)

    def __str__(self) -> str:
        body = ", ".join(f"{name}↦{index}" for name, index in self.entries)
        return f"{{{body}}}"


@dataclass(frozen=True)
class SymbolicLabel:
    """A letter ``⟨α : s⟩`` of the symbolic alphabet."""

    action_name: str
    substitution: SymbolicSubstitution

    def __str__(self) -> str:
        return f"⟨{self.action_name}:{self.substitution}⟩"


def _is_valid_symbolic_substitution(action: Action, mapping: Mapping[str, int], bound: int) -> bool:
    for position, fresh_variable in enumerate(action.fresh, start=1):
        if mapping.get(fresh_variable) != -position:
            return False
    for parameter in action.parameters:
        index = mapping.get(parameter)
        if index is None or not 0 <= index <= bound - 1:
            return False
    return len(mapping) == len(action.parameters) + len(action.fresh)


def symbolic_substitutions_for_action(action: Action, bound: int) -> tuple[SymbolicSubstitution, ...]:
    """``SymSubs(α, b)``: all symbolic substitutions satisfying r1–r2."""
    if bound < 0:
        raise RecencyError("recency bound must be non-negative")
    fresh_part = {variable: -position for position, variable in enumerate(action.fresh, start=1)}
    if not action.parameters:
        return (SymbolicSubstitution.of(fresh_part),)
    if bound == 0:
        # With b = 0 no parameter can be bound to a recent element.
        return ()
    result = []
    for combination in product(range(bound), repeat=len(action.parameters)):
        mapping = dict(fresh_part)
        mapping.update(dict(zip(action.parameters, combination)))
        result.append(SymbolicSubstitution.of(mapping))
    return tuple(result)


def symbolic_alphabet(system: DMS, bound: int) -> tuple[SymbolicLabel, ...]:
    """``symAlph_{S,b}``: all letters ``⟨α : s⟩`` with ``s ∈ SymSubs(α, b)``."""
    letters: list[SymbolicLabel] = []
    for action in system.actions:
        for substitution in symbolic_substitutions_for_action(action, bound):
            letters.append(SymbolicLabel(action.name, substitution))
    return tuple(letters)


def abstract_substitution(
    action: Action,
    configuration: RecencyConfiguration,
    sigma: Mapping[str, object],
    bound: int,
) -> SymbolicSubstitution:
    """The recency-indexing abstraction of ``σ`` at the given configuration.

    Raises:
        RecencyError: if a parameter is bound outside ``Recent_b`` (its
            recency index would be ``≥ b``).
    """
    mapping: dict[str, int] = {}
    for position, fresh_variable in enumerate(action.fresh, start=1):
        mapping[fresh_variable] = -position
    for parameter in action.parameters:
        index = recency_index(configuration.instance, configuration.seq_no, sigma[parameter])
        if index >= bound:
            raise RecencyError(
                f"parameter {parameter}={sigma[parameter]!r} has recency index {index} ≥ b={bound}"
            )
        mapping[parameter] = index
    return SymbolicSubstitution.of(mapping)


def abstract_run(run: RecencyBoundedRun) -> tuple[SymbolicLabel, ...]:
    """``Abstr(ρ̂)``: the word of symbolic labels of a b-bounded run prefix."""
    labels: list[SymbolicLabel] = []
    for step in run.steps:
        symbolic = abstract_substitution(step.action, step.source, step.substitution, run.bound)
        labels.append(SymbolicLabel(step.action.name, symbolic))
    return tuple(labels)
