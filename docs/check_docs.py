"""Documentation checks run by the CI docs job.

Two checks, both against the files as committed:

1. **Executable quickstart** — every fenced ``python`` block in
   ``README.md`` is executed (in one shared namespace, in order), so the
   README's quickstart snippet can never drift from the real API.
2. **Link check** — every relative Markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file or directory (external
   ``http(s)`` links and pure anchors are skipped; fragment suffixes are
   stripped).

Run locally with::

    PYTHONPATH=src python docs/check_docs.py

Exits non-zero with a per-failure report when anything is broken.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

FENCE = re.compile(r"^```python\s*$(.*?)^```\s*$", re.MULTILINE | re.DOTALL)
# Markdown links, ignoring images; group 1 is the target.
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")


def run_python_snippets(path: Path) -> list[str]:
    """Execute every ```python block of ``path``; returns failure messages."""
    failures = []
    namespace: dict = {"__name__": "__doc_snippet__"}
    for index, match in enumerate(FENCE.finditer(path.read_text()), start=1):
        snippet = match.group(1)
        try:
            exec(compile(snippet, f"{path.name}#snippet{index}", "exec"), namespace)
        except Exception as error:  # noqa: BLE001 - report, don't crash the checker
            failures.append(f"{path.name} python snippet #{index} raised {error!r}")
    return failures


def check_links(path: Path) -> list[str]:
    """Verify the relative links of one Markdown file; returns failures."""
    failures = []
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            failures.append(f"{path.relative_to(REPO)}: broken link -> {target}")
    return failures


def main() -> int:
    failures: list[str] = []
    readme = REPO / "README.md"
    if readme.exists():
        failures += run_python_snippets(readme)
    else:
        failures.append("README.md is missing")
    for markdown in [readme, *sorted((REPO / "docs").glob("*.md"))]:
        if markdown.exists():
            failures += check_links(markdown)
    if failures:
        print(f"{len(failures)} documentation check(s) failed:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("documentation checks passed (README snippets executed, links resolved)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
