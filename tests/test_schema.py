"""Tests for relational schemas."""

import pytest

from repro.database.schema import RelationSymbol, Schema
from repro.errors import ArityError, SchemaError, UnknownRelationError


def test_relation_symbol_basics():
    symbol = RelationSymbol("R", 2)
    assert symbol.name == "R"
    assert symbol.arity == 2
    assert not symbol.is_proposition
    assert str(symbol) == "R/2"


def test_nullary_relation_is_proposition():
    assert RelationSymbol("p", 0).is_proposition


def test_relation_symbol_rejects_bad_input():
    with pytest.raises(SchemaError):
        RelationSymbol("", 1)
    with pytest.raises(SchemaError):
        RelationSymbol("R", -1)


def test_schema_of_and_lookup():
    schema = Schema.of(("p", 0), ("R", 1))
    assert schema.arity_of("R") == 1
    assert schema.relation("p").is_proposition
    assert "R" in schema
    assert RelationSymbol("R", 1) in schema
    assert RelationSymbol("R", 2) not in schema
    assert len(schema) == 2


def test_schema_rejects_duplicate_names_with_different_arities():
    with pytest.raises(SchemaError):
        Schema.of(("R", 1), ("R", 2))


def test_schema_duplicate_identical_declaration_is_collapsed():
    schema = Schema.of(("R", 1), ("R", 1))
    assert len(schema) == 1


def test_unknown_relation_raises():
    schema = Schema.of(("R", 1))
    with pytest.raises(UnknownRelationError):
        schema.relation("S")


def test_check_atom_arity():
    schema = Schema.of(("R", 2))
    schema.check_atom("R", ("a", "b"))
    with pytest.raises(ArityError):
        schema.check_atom("R", ("a",))


def test_schema_partitions():
    schema = Schema.of(("p", 0), ("q", 0), ("R", 1), ("S", 3))
    assert {rel.name for rel in schema.propositions} == {"p", "q"}
    assert {rel.name for rel in schema.non_nullary} == {"R", "S"}
    assert schema.max_arity == 3


def test_schema_extend_restrict_union():
    schema = Schema.of(("R", 1))
    extended = schema.extend(("S", 2))
    assert "S" in extended and "R" in extended
    restricted = extended.restrict(["S"])
    assert "R" not in restricted
    union = schema.union(restricted)
    assert set(union.names) == {"R", "S"}


def test_schema_equality_and_hash():
    left = Schema.of(("R", 1), ("p", 0))
    right = Schema.of(("p", 0), ("R", 1))
    assert left == right
    assert hash(left) == hash(right)


def test_schema_from_mapping():
    schema = Schema.from_mapping({"R": 2, "p": 0})
    assert schema.arity_of("R") == 2
