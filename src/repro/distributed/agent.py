"""The node side of the two-level distributed exploration.

A :class:`NodeAgent` owns one node's share of the exploration state —
its **own** :class:`~repro.search.interning.InternTable` (mirrored into
a node-local :class:`~repro.search.shm_interning.SharedStateStore` when
the node expands on worker processes), the partial
:class:`~repro.search.engine.SearchResult` of the hash-partition it
owns, and a node-local expansion backend reusing the sharded engine's
machinery (:class:`~repro.search.sharded.ShardFrontiers` with tail-half
stealing across ``local_shards`` queues, serial or fork-multiprocessing
expansion).  The coordinator never holds these states; that is what
moves the intern-table memory ceiling from one machine to the cluster.

The agent serves the coordinator's frames in arrival order on its main
thread.  A small **receiver thread** answers latency-sensitive frames —
``ping`` (heartbeat) and ``fetch`` (work-stealing state reads) —
immediately, even while the main thread is deep in an expansion, so a
straggling node can be health-checked and robbed of its tail without
waiting for its current batch.

Run an agent from the command line with::

    PYTHONPATH=src python -m repro.harness --agent --coordinator HOST:PORT

which blocks until the coordinator shuts the lease down or the
connection drops.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
from time import perf_counter
from typing import Any, Callable, Iterable

from repro.distributed.transport import PROTOCOL_VERSION, Channel
from repro.errors import DistributedError
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.search.engine import SearchResult
from repro.search.interning import InternTable
from repro.search.sharded import (
    ProcessExpansionBackend,
    SerialExpansionBackend,
    ShardFrontiers,
    process_backend_available,
    shard_of,
)
from repro.search.shm_interning import SharedInternTable, SharedStateStore

__all__ = ["NodeAgent", "run_agent"]

# How long a freshly connected agent waits for its lease before giving
# up: generous, because an operator may start agents well before the
# coordinating experiment.
LEASE_TIMEOUT_SECONDS = 600.0


class NodeAgent:
    """One node process of a distributed exploration (see module docs).

    Args:
        channel: the framed connection to the coordinator.
        successors: the successor function, when the agent was forked by
            the localhost launcher (inherited closure).  Agents started
            independently pass ``None`` and receive a picklable
            :class:`~repro.distributed.context.ExplorationContext` in
            the lease instead.
    """

    def __init__(
        self, channel: Channel, successors: Callable[[Any], Iterable] | None = None
    ) -> None:
        self._channel = channel
        self._successors = successors
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._index = 0
        self._local_shards = 1
        self._local_workers = 1
        self._batch_size = 16
        self._shared_interning: bool | None = None
        self._backend = None
        self._store: SharedStateStore | None = None
        self._table: InternTable | None = None
        self._partial: SearchResult | None = None
        self._keep_parents = True
        # A node-local registry (when the lease asks for one) accumulates
        # expansion counters; its snapshot rides back on collect/summarize
        # replies and the coordinator folds it in with a node label.
        self._metrics = NULL_REGISTRY

    # -- serving ----------------------------------------------------------------

    def serve(self) -> None:
        """Handshake, then serve coordinator frames until shutdown/EOF."""
        self._channel.send("hello", {"protocol": PROTOCOL_VERSION, "pid": os.getpid()})
        kind, data = self._channel.recv(timeout=LEASE_TIMEOUT_SECONDS)
        if kind != "lease":
            raise DistributedError(f"expected a lease, got {kind!r}")
        self._apply_lease(data)
        self._channel.send("ready", {"node": self._index})
        receiver = threading.Thread(target=self._receive_loop, daemon=True)
        receiver.start()
        try:
            while True:
                item = self._queue.get()
                if item is None:
                    break
                kind, data = item
                if kind == "shutdown":
                    self._channel.send("bye", {})
                    break
                handler = self._HANDLERS.get(kind)
                if handler is None:
                    self._channel.send("error", {"message": f"unknown frame kind {kind!r}"})
                    continue
                try:
                    handler(self, data)
                except Exception as error:  # noqa: BLE001 - report, let the coordinator decide
                    self._channel.send(
                        "error", {"message": f"{type(error).__name__}: {error}"}
                    )
        finally:
            self._close_backend()
            self._channel.close()

    def _receive_loop(self) -> None:
        """Read frames; answer ping/fetch inline, queue the rest in order.

        The receiver must never die silently: whatever kills it — the
        coordinator vanishing, or an unpicklable inbound frame (version
        skew) — the ``None`` sentinel unblocks the main loop so the
        agent process exits instead of hanging in ``queue.get()``.
        """
        try:
            while True:
                kind, data = self._channel.recv(timeout=None)
                if kind == "ping":
                    self._channel.send("pong", {})
                elif kind == "fetch":
                    # Stolen states are read by id from levels committed
                    # earlier, so the concurrent main thread never
                    # mutates the entries being read.
                    try:
                        table = self._table
                        states = [table.state_of(i) for i in data["ids"]]
                    except Exception as error:  # noqa: BLE001 - report, stay alive
                        self._channel.send(
                            "error", {"message": f"fetch failed: {type(error).__name__}: {error}"}
                        )
                    else:
                        self._channel.send("states", {"states": states})
                else:
                    self._queue.put((kind, data))
                    if kind == "shutdown":
                        return
        except (DistributedError, OSError):
            pass  # coordinator is gone: a normal teardown
        except BaseException as error:  # noqa: BLE001 - e.g. unpickling version skew
            try:
                self._channel.send(
                    "error", {"message": f"receive failed: {type(error).__name__}: {error}"}
                )
            except (DistributedError, OSError):
                pass
        finally:
            self._queue.put(None)  # unblock the main loop unconditionally

    # -- lease and per-exploration state ----------------------------------------

    def _apply_lease(self, lease: dict) -> None:
        """Bind the node index, expansion config and successor function."""
        self._index = lease["node"]
        self._local_shards = max(1, lease.get("local_shards", 1))
        self._local_workers = max(1, lease.get("local_workers", 1))
        self._batch_size = max(1, lease.get("batch_size", 16))
        self._shared_interning = lease.get("shared_interning")
        self._metrics = MetricsRegistry() if lease.get("metrics") else NULL_REGISTRY
        context = lease.get("context")
        if context is not None:
            self._successors = context.successors()
        if self._successors is None:
            raise DistributedError(
                "the lease carried no exploration context and the agent was not "
                "forked with a successor function"
            )
        self._ensure_backend()

    def _ensure_backend(self):
        """The node-local expansion backend (created once per lease).

        Mirrors :meth:`repro.search.sharded.ShardedEngine._backend`: a
        fork pool when more than one local worker was asked for and fork
        exists, the deterministic serial backend otherwise.  The store —
        when the pool forks and shared memory is available — carries the
        node's id-only expansion traffic and backs the node table.
        """
        if self._backend is None:
            if self._local_workers > 1 and process_backend_available():
                store = None
                if self._shared_interning is not False:
                    store = SharedStateStore.create(slots=self._local_workers + 4)
                self._backend = ProcessExpansionBackend(
                    self._successors, self._local_workers, store=store
                )
                self._store = store
            else:
                self._backend = SerialExpansionBackend(self._successors)
                self._store = None
        return self._backend

    def _close_backend(self) -> None:
        backend, self._backend = self._backend, None
        self._store = None
        if backend is not None:
            try:
                backend.close()
            except Exception:  # noqa: BLE001 - teardown must never raise
                pass

    def _handle_lease(self, data: dict) -> None:
        """Re-lease mid-session: rebind config/context, recycle the backend.

        A long-lived coordinator serves successive engines (different
        systems, bounds or local configurations); each re-lease tears
        the node-local expansion backend and store down so the next
        exploration runs with exactly the leased semantics.
        """
        self._close_backend()
        self._apply_lease(data)
        self._channel.send("ready", {"node": self._index})

    def _handle_reset(self, data: dict) -> None:
        """Start a fresh exploration: new node table, new empty partial."""
        self._table = SharedInternTable(self._store) if self._store is not None else InternTable()
        self._keep_parents = data["keep_parents"]
        if self._metrics.enabled:
            self._metrics = MetricsRegistry()  # counters are per-exploration
        self._partial = SearchResult(
            initial=data["initial"],
            retention=data["retention"],
            interning=self._table,
        )
        self._channel.send("ok", {})

    def _handle_init_root(self, data: dict) -> None:
        """Intern the root (this node owns it) at depth 0."""
        local_id, _, _ = self._table.intern(data["state"])
        self._partial.depths[local_id] = 0
        self._channel.send("ok", {"local_id": local_id})

    # -- the per-level protocol --------------------------------------------------

    def _handle_expand(self, data: dict) -> None:
        """Expand one chunk of frontier entries; reply the edge lists.

        Entries are ``(ref, local_id, state)``: a state this node owns
        resolves through its table (``local_id``), a stolen state from a
        straggler arrives inline (``state``).  Expansion reuses the
        sharded engine's shard queues, stealing policy and backends —
        including id-only traffic through the node's own store.
        """
        table = self._table
        store = self._store
        frontiers = ShardFrontiers(self._local_shards)
        for ref, local_id, state in data["entries"]:
            if local_id is not None:
                state = table.state_of(local_id)
            if store is not None:
                shared_id = (
                    table.shared_id_of(local_id)
                    if local_id is not None and isinstance(table, SharedInternTable)
                    else None
                )
                inline = state if shared_id is None else None
                entry = (ref, shared_id, inline)
            else:
                entry = (ref, state)
            frontiers.push(shard_of(state, self._local_shards), entry)
        if self._metrics.enabled:
            started = perf_counter()
            expansions = self._ensure_backend().expand(frontiers, self._batch_size)
            self._metrics.histogram("node_expand_seconds").observe(perf_counter() - started)
            self._metrics.counter("node_edges_total").inc(
                sum(len(edges) for edges in expansions.values())
            )
        else:
            expansions = self._ensure_backend().expand(frontiers, self._batch_size)
        self._channel.send("expanded", {"results": list(expansions.items())})

    def _handle_probe(self, data: dict) -> None:
        """Tentative dedup of level candidates, in global position order.

        Does not commit anything — the coordinator needs the positions
        of would-be-new states to locate a ``max_configurations`` cut
        before telling anyone to intern.  Dedup is prefix-stable, so the
        later commit (a prefix of these candidates) agrees with the
        probe on every position it keeps.
        """
        table = self._table
        seen: set = set()
        news: list[int] = []
        for position, state in data["targets"]:
            if state in table or state in seen:
                continue
            seen.add(state)
            news.append(position)
        self._channel.send("probed", {"news": news})

    def _handle_commit(self, data: dict) -> None:
        """Apply one level's committed share to the node partial.

        ``candidates`` (targets this node owns, global position order)
        are interned — new states get their depth and, when parents are
        kept, a spanning-tree link whose source resolves against this
        node's table or stays ``-1`` (cross-node, repaired by
        :meth:`SearchResult.merge`).  ``edge_count``/``edges`` are the
        share generated *from* this node's states, and ``truncated``
        marks the partial whose state generated the limit-crossing edge.
        """
        partial = self._partial
        table = self._table
        partial.edge_count += data["edge_count"]
        edges = data.get("edges")
        if edges:
            partial.edges.extend(edges)
        if data["truncated"]:
            partial.truncated = True
        depth = data["depth"]
        news: list[tuple[int, int]] = []
        for position, edge in data["candidates"]:
            local_id, _, is_new = table.intern(edge.target)
            if not is_new:
                continue
            partial.depths[local_id] = depth
            if self._keep_parents:
                source_local = table.id_of(edge.source)
                partial.parents[local_id] = (
                    source_local if source_local is not None else -1,
                    edge,
                )
            news.append((position, local_id))
        if news and self._metrics.enabled:
            self._metrics.counter("node_states_total").inc(len(news))
        self._channel.send("committed", {"news": news})

    # -- result collection -------------------------------------------------------

    def _handle_collect(self, data: dict) -> None:
        """Ship the node partial (detached from any shared store)."""
        self._channel.send(
            "partial",
            {"result": self._detached_partial(), "metrics": self._metrics.snapshot()},
        )

    def _handle_summarize(self, data: dict) -> None:
        """Ship the partial's counters only — no state leaves the node."""
        partial = self._partial
        self._channel.send(
            "summary",
            {
                "states": len(self._table),
                "edge_count": partial.edge_count,
                "truncated": partial.truncated,
                "metrics": self._metrics.snapshot(),
            },
        )

    def _detached_partial(self) -> SearchResult:
        """A picklable copy of the partial over a plain intern table.

        A :class:`SharedInternTable` is a view of a local shared-memory
        segment and cannot cross the wire; re-interning in discovery
        order preserves every dense local id, so parent links and depths
        keep their meaning verbatim.
        """
        partial = self._partial
        table = InternTable()
        for state in partial.interning.states():
            table.intern(state)
        return SearchResult(
            initial=partial.initial,
            interning=table,
            edges=list(partial.edges),
            edge_count=partial.edge_count,
            depth_reached=partial.depth_reached,
            truncated=partial.truncated,
            parents=dict(partial.parents),
            retention=partial.retention,
            depths=dict(partial.depths),
        )

    _HANDLERS = {
        "lease": _handle_lease,
        "reset": _handle_reset,
        "init-root": _handle_init_root,
        "expand": _handle_expand,
        "probe": _handle_probe,
        "commit": _handle_commit,
        "collect": _handle_collect,
        "summarize": _handle_summarize,
    }


def run_agent(
    address: tuple[str, int], successors: Callable[[Any], Iterable] | None = None
) -> None:
    """Connect to a coordinator at ``address`` and serve until released.

    The entry point behind ``python -m repro.harness --agent`` and the
    localhost launcher's forked processes.
    """
    sock = socket.create_connection(address, timeout=LEASE_TIMEOUT_SECONDS)
    sock.settimeout(None)
    NodeAgent(Channel(sock), successors=successors).serve()
