"""The running example of the paper (Example 3.1, Figures 1 and 2).

Schema ``{p/0, R/1, Q/1}`` and the four actions ``α, β, γ, δ``; the
module also exports the exact generating sequence of the Figure 1 run,
which is 2-recency-bounded (Example 5.1) and whose abstraction and
nested-word encoding are the paper's Example 6.1 and Figure 2.
"""

from __future__ import annotations

from repro.dms.builder import DMSBuilder
from repro.dms.system import DMS

__all__ = ["example_31_system", "figure_1_labels", "figure_1_expected_instances"]


def example_31_system() -> DMS:
    """The DMS of Example 3.1."""
    builder = DMSBuilder("example-3.1")
    builder.relations(("p", 0), ("R", 1), ("Q", 1))
    builder.initially("p")
    builder.action(
        "alpha",
        fresh=("v1", "v2", "v3"),
        guard="true",
        add=[("R", "v1"), ("R", "v2"), ("Q", "v3"), ("p",)],
    )
    builder.action(
        "beta",
        parameters=("u",),
        fresh=("v1", "v2"),
        guard="p & R(u)",
        delete=[("p",), ("R", "u")],
        add=[("Q", "v1"), ("Q", "v2")],
    )
    builder.action(
        "gamma",
        parameters=("u",),
        guard="p & !Q(u)",
        delete=[("p",), ("R", "u")],
    )
    builder.action(
        "delta",
        parameters=("u1", "u2"),
        guard="!p & Q(u1) & (R(u2) | Q(u2))",
        delete=[("Q", "u1"), ("R", "u2")],
    )
    return builder.build()


def figure_1_labels() -> tuple:
    """The generating sequence of the run depicted in Figure 1."""
    return (
        ("alpha", {"v1": "e1", "v2": "e2", "v3": "e3"}),
        ("beta", {"u": "e2", "v1": "e4", "v2": "e5"}),
        ("alpha", {"v1": "e6", "v2": "e7", "v3": "e8"}),
        ("gamma", {"u": "e7"}),
        ("delta", {"u1": "e8", "u2": "e6"}),
        ("delta", {"u1": "e4", "u2": "e5"}),
        ("delta", {"u1": "e3", "u2": "e3"}),
        ("alpha", {"v1": "e9", "v2": "e10", "v3": "e11"}),
    )


def figure_1_expected_instances() -> tuple:
    """The database contents of Figure 1 as ``{relation: rows}`` dictionaries.

    Propositions map to booleans, unary relations to sets of element names.
    """
    return (
        {"p": True, "R": set(), "Q": set()},
        {"p": True, "R": {"e1", "e2"}, "Q": {"e3"}},
        {"p": False, "R": {"e1"}, "Q": {"e3", "e4", "e5"}},
        {"p": True, "R": {"e1", "e6", "e7"}, "Q": {"e3", "e4", "e5", "e8"}},
        {"p": False, "R": {"e1", "e6"}, "Q": {"e3", "e4", "e5", "e8"}},
        {"p": False, "R": {"e1"}, "Q": {"e3", "e4", "e5"}},
        {"p": False, "R": {"e1"}, "Q": {"e3", "e5"}},
        {"p": False, "R": {"e1"}, "Q": {"e5"}},
        {"p": True, "R": {"e1", "e9", "e10"}, "Q": {"e5", "e11"}},
    )
