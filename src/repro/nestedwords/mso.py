"""MSO over nested words (MSONW; paper, Section 6.2).

Syntax::

    ϕ ::= a(x) | x < y | x ⊿ y | ¬ϕ | ϕ ∨ ϕ | ∃x.ϕ | ∃X.ϕ

The module provides the formula AST (with the usual derived connectives)
and its evaluation over *concrete finite* nested words.  Satisfiability
of MSONW is decidable (Fact 1, Alur & Madhusudan) but non-elementary; the
library uses concrete-word evaluation to cross-validate the reduction of
Section 6 and never builds the full automaton.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain, combinations
from typing import Iterator, Mapping

from repro.errors import FormulaError
from repro.nestedwords.word import NestedWord

__all__ = [
    "NWFormula",
    "Letter",
    "Less",
    "LessEqual",
    "EqualsPos",
    "Matched",
    "InSet",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "Forall",
    "ExistsSet",
    "ForallSet",
    "TrueFormula",
    "conjunction",
    "disjunction",
    "evaluate_nw",
    "holds_on_nested_word",
]


@dataclass(frozen=True)
class NWFormula:
    """Base class of MSONW formula nodes."""

    def children(self) -> tuple["NWFormula", ...]:
        """Immediate sub-formulae."""
        return ()

    def walk(self) -> Iterator["NWFormula"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def size(self) -> int:
        """Number of AST nodes (the quantity measured by experiment E7)."""
        return 1 + sum(child.size() for child in self.children())

    def free_position_variables(self) -> frozenset:
        """Free first-order (position) variables."""
        raise NotImplementedError

    def free_set_variables(self) -> frozenset:
        """Free second-order (set) variables."""
        raise NotImplementedError

    def is_sentence(self) -> bool:
        """True when the formula has no free variables."""
        return not (self.free_position_variables() | self.free_set_variables())

    def __and__(self, other: "NWFormula") -> "NWFormula":
        return And(self, other)

    def __or__(self, other: "NWFormula") -> "NWFormula":
        return Or(self, other)

    def __invert__(self) -> "NWFormula":
        return Not(self)

    def implies(self, other: "NWFormula") -> "NWFormula":
        """``self ⇒ other``."""
        return Implies(self, other)


@dataclass(frozen=True)
class TrueFormula(NWFormula):
    """The constant ``true``."""

    def free_position_variables(self) -> frozenset:
        return frozenset()

    def free_set_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Letter(NWFormula):
    """``a(x)``: position ``x`` carries letter ``a``."""

    letter: object
    position: str

    def free_position_variables(self) -> frozenset:
        return frozenset({self.position})

    def free_set_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.letter}({self.position})"


@dataclass(frozen=True)
class Less(NWFormula):
    """``x < y``."""

    left: str
    right: str

    def free_position_variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def free_set_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.left} < {self.right}"


@dataclass(frozen=True)
class LessEqual(NWFormula):
    """``x ≤ y`` (derived, kept primitive for formula-size parity with the paper)."""

    left: str
    right: str

    def free_position_variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def free_set_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.left} ≤ {self.right}"


@dataclass(frozen=True)
class EqualsPos(NWFormula):
    """``x = y`` on positions."""

    left: str
    right: str

    def free_position_variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def free_set_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class Matched(NWFormula):
    """``x ⊿ y``: the nesting relation links positions ``x`` and ``y``."""

    push: str
    pop: str

    def free_position_variables(self) -> frozenset:
        return frozenset({self.push, self.pop})

    def free_set_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return f"{self.push} ⊿ {self.pop}"


@dataclass(frozen=True)
class InSet(NWFormula):
    """``x ∈ X``."""

    position: str
    set_variable: str

    def free_position_variables(self) -> frozenset:
        return frozenset({self.position})

    def free_set_variables(self) -> frozenset:
        return frozenset({self.set_variable})

    def __str__(self) -> str:
        return f"{self.position} ∈ {self.set_variable}"


@dataclass(frozen=True)
class Not(NWFormula):
    """Negation."""

    operand: NWFormula

    def children(self) -> tuple[NWFormula, ...]:
        return (self.operand,)

    def free_position_variables(self) -> frozenset:
        return self.operand.free_position_variables()

    def free_set_variables(self) -> frozenset:
        return self.operand.free_set_variables()

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class _Binary(NWFormula):
    left: NWFormula
    right: NWFormula

    _symbol = "?"

    def children(self) -> tuple[NWFormula, ...]:
        return (self.left, self.right)

    def free_position_variables(self) -> frozenset:
        return self.left.free_position_variables() | self.right.free_position_variables()

    def free_set_variables(self) -> frozenset:
        return self.left.free_set_variables() | self.right.free_set_variables()

    def __str__(self) -> str:
        return f"({self.left} {self._symbol} {self.right})"


@dataclass(frozen=True)
class And(_Binary):
    """Conjunction."""

    _symbol = "∧"


@dataclass(frozen=True)
class Or(_Binary):
    """Disjunction."""

    _symbol = "∨"


@dataclass(frozen=True)
class Implies(_Binary):
    """Implication (derived)."""

    _symbol = "⇒"


@dataclass(frozen=True)
class _PositionQuantifier(NWFormula):
    variable: str
    body: NWFormula

    _symbol = "?"

    def children(self) -> tuple[NWFormula, ...]:
        return (self.body,)

    def free_position_variables(self) -> frozenset:
        return self.body.free_position_variables() - {self.variable}

    def free_set_variables(self) -> frozenset:
        return self.body.free_set_variables()

    def __str__(self) -> str:
        return f"{self._symbol}{self.variable}.({self.body})"


@dataclass(frozen=True)
class Exists(_PositionQuantifier):
    """``∃x.ϕ``."""

    _symbol = "∃"


@dataclass(frozen=True)
class Forall(_PositionQuantifier):
    """``∀x.ϕ`` (derived)."""

    _symbol = "∀"


@dataclass(frozen=True)
class _SetQuantifier(NWFormula):
    variable: str
    body: NWFormula

    _symbol = "?"

    def children(self) -> tuple[NWFormula, ...]:
        return (self.body,)

    def free_position_variables(self) -> frozenset:
        return self.body.free_position_variables()

    def free_set_variables(self) -> frozenset:
        return self.body.free_set_variables() - {self.variable}

    def __str__(self) -> str:
        return f"{self._symbol}{self.variable}.({self.body})"


@dataclass(frozen=True)
class ExistsSet(_SetQuantifier):
    """``∃X.ϕ``."""

    _symbol = "∃"


@dataclass(frozen=True)
class ForallSet(_SetQuantifier):
    """``∀X.ϕ`` (derived)."""

    _symbol = "∀"


def conjunction(*parts: NWFormula) -> NWFormula:
    """N-ary conjunction (``true`` when empty)."""
    filtered = [part for part in parts if not isinstance(part, TrueFormula)]
    if not filtered:
        return TrueFormula()
    result = filtered[0]
    for part in filtered[1:]:
        result = And(result, part)
    return result


def disjunction(*parts: NWFormula) -> NWFormula:
    """N-ary disjunction (``¬true`` when empty)."""
    parts = tuple(parts)
    if not parts:
        return Not(TrueFormula())
    result = parts[0]
    for part in parts[1:]:
        result = Or(result, part)
    return result


# -- evaluation over concrete nested words -------------------------------------------


class NWAssignment:
    """An assignment of MSONW variables over a concrete nested word."""

    __slots__ = ("positions", "sets")

    def __init__(
        self,
        positions: Mapping[str, int] | None = None,
        sets: Mapping[str, frozenset] | None = None,
    ) -> None:
        self.positions = dict(positions or {})
        self.sets = {name: frozenset(value) for name, value in (sets or {}).items()}

    def copy(self) -> "NWAssignment":
        """Shallow copy used when binding quantified variables."""
        return NWAssignment(self.positions, self.sets)


def evaluate_nw(
    formula: NWFormula, word: NestedWord, assignment: NWAssignment | None = None
) -> bool:
    """Evaluate an MSONW formula over a concrete finite nested word."""
    env = assignment or NWAssignment()
    missing_positions = formula.free_position_variables() - set(env.positions)
    missing_sets = formula.free_set_variables() - set(env.sets)
    if missing_positions or missing_sets:
        raise FormulaError(
            f"unbound MSONW variables: positions={sorted(missing_positions)}, "
            f"sets={sorted(missing_sets)}"
        )
    return _eval(formula, word, env)


def holds_on_nested_word(formula: NWFormula, word: NestedWord) -> bool:
    """Evaluate a sentence over the nested word."""
    if not formula.is_sentence():
        raise FormulaError(f"{formula} is not a sentence")
    return _eval(formula, word, NWAssignment())


def _eval(formula: NWFormula, word: NestedWord, env: NWAssignment) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, Letter):
        return word.letter_at(env.positions[formula.position]) == formula.letter
    if isinstance(formula, Less):
        return env.positions[formula.left] < env.positions[formula.right]
    if isinstance(formula, LessEqual):
        return env.positions[formula.left] <= env.positions[formula.right]
    if isinstance(formula, EqualsPos):
        return env.positions[formula.left] == env.positions[formula.right]
    if isinstance(formula, Matched):
        return word.matches(env.positions[formula.push], env.positions[formula.pop])
    if isinstance(formula, InSet):
        return env.positions[formula.position] in env.sets[formula.set_variable]
    if isinstance(formula, Not):
        return not _eval(formula.operand, word, env)
    if isinstance(formula, And):
        return _eval(formula.left, word, env) and _eval(formula.right, word, env)
    if isinstance(formula, Or):
        return _eval(formula.left, word, env) or _eval(formula.right, word, env)
    if isinstance(formula, Implies):
        return (not _eval(formula.left, word, env)) or _eval(formula.right, word, env)
    if isinstance(formula, Exists):
        return any(
            _eval(formula.body, word, _with_position(env, formula.variable, position))
            for position in word.positions()
        )
    if isinstance(formula, Forall):
        return all(
            _eval(formula.body, word, _with_position(env, formula.variable, position))
            for position in word.positions()
        )
    if isinstance(formula, ExistsSet):
        return any(
            _eval(formula.body, word, _with_set(env, formula.variable, subset))
            for subset in _subsets(word)
        )
    if isinstance(formula, ForallSet):
        return all(
            _eval(formula.body, word, _with_set(env, formula.variable, subset))
            for subset in _subsets(word)
        )
    raise FormulaError(f"unsupported MSONW node {type(formula).__name__}")


def _with_position(env: NWAssignment, variable: str, position: int) -> NWAssignment:
    updated = env.copy()
    updated.positions[variable] = position
    return updated


def _with_set(env: NWAssignment, variable: str, subset: frozenset) -> NWAssignment:
    updated = env.copy()
    updated.sets[variable] = subset
    return updated


def _subsets(word: NestedWord):
    positions = list(word.positions())
    return (
        frozenset(subset)
        for subset in chain.from_iterable(
            combinations(positions, size) for size in range(len(positions) + 1)
        )
    )
