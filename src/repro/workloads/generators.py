"""Random workload generators.

Used by the property-based tests and the benchmark harness to produce
random DMSs and random b-bounded runs with controlled parameters
(schema size, arity, number of actions, fresh inputs, guard shapes).
All generators are deterministic given a ``random.Random`` seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.database.constraints import ConstraintSet
from repro.database.instance import Fact
from repro.database.schema import Schema
from repro.dms.action import Action
from repro.dms.system import DMS
from repro.fol.syntax import (
    Atom,
    Equals,
    Not,
    Query,
    TrueQuery,
    conjunction,
    disjunction,
    exists,
)
from repro.recency.explorer import iterate_b_bounded_runs
from repro.recency.semantics import RecencyBoundedRun

__all__ = [
    "RandomDMSParameters",
    "random_schema",
    "random_dms",
    "random_bounded_runs",
    "drop_action_variant",
]


@dataclass(frozen=True)
class RandomDMSParameters:
    """Knobs of the random DMS generator.

    The first block of knobs shapes the schema and the action skeleton;
    the second block — added for the fuzzing subsystem
    (:mod:`repro.fuzz`) — deepens guards and adds database constraints.
    All knobs default to the historical generator behaviour, so a seed
    produces byte-identical systems whether or not the fuzz knobs exist.

    Attributes:
        relations: number of non-nullary relations ``R0 .. Rk``.
        max_arity: maximum relation arity (each arity is drawn in
            ``1..max_arity``).
        propositions: number of nullary relations ``P0 .. Pk``.
        actions: number of random actions besides the ``seed`` action.
        max_parameters: maximum action parameters (``u1 ..``).
        max_fresh: maximum fresh variables per action (``v1 ..``).
        max_update_facts: maximum ``Del``/``Add`` facts per action.
        negated_guard_probability: chance a proposition literal in a
            guard is negated.
        guard_depth: number of extra random connective layers stacked on
            top of the base guard conjunction (0 keeps flat guards).
        guard_or_probability: chance a stacked layer uses disjunction
            instead of conjunction (only consulted when ``guard_depth``
            is positive).
        constraint_density: per-relation probability of generating a
            denial constraint ("all facts of ``R`` agree on their first
            column"), giving the system blocking semantics (Example 4.3).
    """

    relations: int = 3
    max_arity: int = 2
    propositions: int = 1
    actions: int = 4
    max_parameters: int = 2
    max_fresh: int = 2
    max_update_facts: int = 2
    negated_guard_probability: float = 0.3
    guard_depth: int = 0
    guard_or_probability: float = 0.0
    constraint_density: float = 0.0


def random_schema(rng: random.Random, parameters: RandomDMSParameters) -> Schema:
    """A random schema with the requested number of relations and propositions."""
    pairs = [(f"P{i}", 0) for i in range(parameters.propositions)]
    for index in range(parameters.relations):
        pairs.append((f"R{index}", rng.randint(1, max(1, parameters.max_arity))))
    return Schema.of(*pairs)


def _random_guard(
    rng: random.Random,
    schema: Schema,
    action_parameters: tuple[str, ...],
    parameters: RandomDMSParameters,
) -> Query:
    conjuncts: list[Query] = []
    for variable in action_parameters:
        candidates = [rel for rel in schema.non_nullary]
        relation = rng.choice(candidates)
        arguments = tuple(
            variable if position == 0 else rng.choice(action_parameters)
            for position in range(relation.arity)
        )
        conjuncts.append(Atom(relation.name, arguments))
    if schema.propositions and rng.random() < 0.5:
        proposition = rng.choice(schema.propositions)
        literal: Query = Atom(proposition.name, ())
        if rng.random() < parameters.negated_guard_probability:
            literal = Not(literal)
        conjuncts.append(literal)
    if rng.random() < 0.3 and schema.non_nullary:
        relation = rng.choice(schema.non_nullary)
        bound = tuple(f"w{k}" for k in range(relation.arity))
        conjuncts.append(Not(exists(bound, Atom(relation.name, bound))))
    if not conjuncts:
        return TrueQuery()
    guard = conjunction(*conjuncts)
    # Fuzz knobs: stack extra connective layers (conjunction or
    # disjunction of one more literal) on top of the flat base guard.
    # guard_depth=0 draws nothing, preserving historical seeds.
    for _ in range(parameters.guard_depth):
        literal = _random_guard_literal(rng, schema, action_parameters, parameters)
        if literal is None:
            break
        if rng.random() < parameters.guard_or_probability:
            guard = disjunction(guard, literal)
        else:
            guard = conjunction(guard, literal)
    return guard


def _random_guard_literal(
    rng: random.Random,
    schema: Schema,
    action_parameters: tuple[str, ...],
    parameters: RandomDMSParameters,
) -> Query | None:
    """One extra guard literal: an atom over the parameters, a proposition
    literal, or an equality between two parameters."""
    choices = []
    if schema.non_nullary and action_parameters:
        choices.append("atom")
    if schema.propositions:
        choices.append("proposition")
    if len(action_parameters) >= 2:
        choices.append("equality")
    if not choices:
        return None
    kind = rng.choice(choices)
    if kind == "atom":
        relation = rng.choice(schema.non_nullary)
        arguments = tuple(rng.choice(action_parameters) for _ in range(relation.arity))
        literal: Query = Atom(relation.name, arguments)
    elif kind == "proposition":
        literal = Atom(rng.choice(schema.propositions).name, ())
    else:
        left, right = rng.sample(list(action_parameters), 2)
        literal = Equals(left, right)
    if rng.random() < parameters.negated_guard_probability:
        literal = Not(literal)
    return literal


def _random_constraints(
    rng: random.Random, schema: Schema, parameters: RandomDMSParameters
) -> ConstraintSet:
    """Denial constraints over a random subset of the non-nullary relations.

    Each selected relation ``R`` gets the sentence
    ``¬∃x⃗,y⃗. R(x⃗) ∧ R(y⃗) ∧ x1 ≠ y1`` ("all ``R``-facts agree on their
    first column"): an action application producing a second first-column
    value is blocked, exercising the constrained semantics of Example 4.3
    on both the exploration and the encoding path.
    """
    constraints = []
    for relation in schema.non_nullary:
        if rng.random() >= parameters.constraint_density:
            continue
        first = tuple(f"c{k}" for k in range(relation.arity))
        second = tuple(f"d{k}" for k in range(relation.arity))
        body = conjunction(
            Atom(relation.name, first),
            Atom(relation.name, second),
            Not(Equals(first[0], second[0])),
        )
        constraints.append(Not(exists(first + second, body)))
    return ConstraintSet(constraints)


def _random_facts(
    rng: random.Random,
    schema: Schema,
    variables: tuple[str, ...],
    count: int,
    require_variables: tuple[str, ...] = (),
) -> list[Fact]:
    facts: list[Fact] = []
    usable = [rel for rel in schema.non_nullary] or list(schema.relations)
    for _ in range(count):
        relation = rng.choice(usable)
        if relation.arity == 0:
            facts.append(Fact(relation.name))
            continue
        facts.append(
            Fact(relation.name, tuple(rng.choice(variables) for _ in range(relation.arity)))
        )
    for required in require_variables:
        relation = rng.choice([rel for rel in schema.non_nullary] or list(schema.relations))
        if relation.arity == 0:
            continue
        arguments = [rng.choice(variables) for _ in range(relation.arity)]
        arguments[rng.randrange(relation.arity)] = required
        facts.append(Fact(relation.name, tuple(arguments)))
    return facts


def random_dms(seed: int = 0, parameters: RandomDMSParameters | None = None) -> DMS:
    """Generate a random, well-formed DMS."""
    parameters = parameters or RandomDMSParameters()
    rng = random.Random(seed)
    schema = random_schema(rng, parameters)
    initial_props = [rel.name for rel in schema.propositions if rng.random() < 0.8]
    from repro.database.instance import DatabaseInstance

    initial = DatabaseInstance(schema, (Fact(name) for name in initial_props))
    actions: list[Action] = []
    # Always include a seeding action that injects fresh values unconditionally,
    # so random systems have non-trivial runs.
    seeder_fresh = tuple(f"v{k}" for k in range(1, max(1, parameters.max_fresh) + 1))
    actions.append(
        Action.create(
            "seed",
            schema,
            parameters=(),
            fresh=seeder_fresh,
            guard=TrueQuery(),
            delete=[],
            add=_random_facts(rng, schema, seeder_fresh, 1, require_variables=seeder_fresh),
        )
    )
    for index in range(parameters.actions):
        parameter_count = rng.randint(0, parameters.max_parameters)
        fresh_count = rng.randint(0, parameters.max_fresh)
        action_parameters = tuple(f"u{k}" for k in range(1, parameter_count + 1))
        fresh_variables = tuple(f"v{k}" for k in range(1, fresh_count + 1))
        guard = _random_guard(rng, schema, action_parameters, parameters) if action_parameters else TrueQuery()
        delete = (
            _random_facts(rng, schema, action_parameters, rng.randint(0, parameters.max_update_facts))
            if action_parameters
            else []
        )
        add_variables = action_parameters + fresh_variables
        add = (
            _random_facts(
                rng,
                schema,
                add_variables,
                rng.randint(0, parameters.max_update_facts),
                require_variables=fresh_variables,
            )
            if add_variables
            else []
        )
        actions.append(
            Action.create(
                f"a{index}",
                schema,
                parameters=action_parameters,
                fresh=fresh_variables,
                guard=guard,
                delete=delete,
                add=add,
            )
        )
    constraints = None
    if parameters.constraint_density > 0:
        constraints = _random_constraints(rng, schema, parameters)
    return DMS.create(schema, initial, actions, constraints=constraints, name=f"random-{seed}")


def drop_action_variant(system: DMS, action_name: str) -> DMS:
    """The system with one action removed — a single-action change workload.

    Schema, initial instance, constraints and every other action are
    unchanged, so the variant shares the original's delta base in the
    content-addressed result store (:mod:`repro.store`): re-exploring it
    reuses the cached per-state expansions of the unchanged actions.
    Raises :class:`~repro.errors.TransformError` when the action does
    not exist (a typo would silently measure a no-op change).
    """
    if all(action.name != action_name for action in system.actions):
        from repro.errors import TransformError

        raise TransformError(
            f"cannot drop unknown action {action_name!r} from system {system.name!r}"
        )
    remaining = [action for action in system.actions if action.name != action_name]
    return system.with_actions(remaining, name=system.name)


def random_bounded_runs(
    system: DMS, bound: int, depth: int, max_runs: int, seed: int = 0
) -> tuple[RecencyBoundedRun, ...]:
    """A deterministic sample of canonical b-bounded run prefixes of the system."""
    rng = random.Random(seed)
    runs = list(iterate_b_bounded_runs(system, bound, depth, max_runs=max_runs * 4))
    if len(runs) <= max_runs:
        return tuple(runs)
    return tuple(rng.sample(runs, max_runs))
