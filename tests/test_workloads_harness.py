"""Tests for the workload generators, sweeps and the experiment harness."""


from repro.harness.experiments import (
    experiment_e1_figure1_run,
    experiment_e2_recency_bound,
    experiment_e3_encoding,
    experiment_e5_validity,
    experiment_e8_counter_reductions,
    experiment_e11_transforms,
)
from repro.harness.reporting import format_table, print_experiment
from repro.workloads.generators import RandomDMSParameters, random_bounded_runs, random_dms
from repro.workloads.sweeps import dms_family, sweep


def test_random_dms_is_well_formed_and_deterministic():
    left = random_dms(7)
    right = random_dms(7)
    assert left.action_names() == right.action_names()
    assert left.schema == right.schema
    other = random_dms(8)
    assert other.name != left.name
    assert len(left.actions) >= 1
    # The seed action guarantees at least one enabled transition initially.
    from repro.dms.semantics import enumerate_successors, initial_configuration

    assert list(enumerate_successors(left, initial_configuration(left)))


def test_random_dms_respects_parameters():
    parameters = RandomDMSParameters(relations=2, max_arity=1, actions=2, max_fresh=1)
    system = random_dms(3, parameters)
    assert system.schema.max_arity <= 1
    assert len(system.actions) <= 3  # seed + 2


def test_random_bounded_runs():
    system = random_dms(1, RandomDMSParameters(relations=2, max_arity=1, actions=2))
    runs = random_bounded_runs(system, bound=2, depth=2, max_runs=5)
    assert runs
    assert all(run.bound == 2 for run in runs)


def test_sweep_and_family():
    grid = [{"x": 1}, {"x": 2}]
    points = sweep(grid, lambda params: {"double": params["x"] * 2})
    assert [point.as_row()["double"] for point in points] == [2, 4]
    family = dms_family(seeds=(0, 1))
    assert len(family) == 2


def test_format_table_and_print(capsys):
    rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
    table = format_table(rows)
    assert "a" in table and "22" in table
    assert format_table([]) == "(no rows)"
    print_experiment("E0", "demo", rows)
    captured = capsys.readouterr().out
    assert "E0" in captured and "demo" in captured


def test_experiment_e1_rows_match_paper():
    rows = experiment_e1_figure1_run()
    assert len(rows) == 9
    assert all(row["matches_paper"] for row in rows)


def test_experiment_e2_rows():
    rows = experiment_e2_recency_bound()
    assert rows[0]["value"] == rows[0]["paper"] == 2


def test_experiment_e3_rows():
    rows = experiment_e3_encoding()
    assert all(row["matches_figure_2"] for row in rows)


def test_experiment_e5_rows():
    rows = experiment_e5_validity()
    assert rows[0]["rejected"] == 0
    assert rows[1]["accepted"] == 0


def test_experiment_e8_rows():
    rows = experiment_e8_counter_reductions()
    assert all(row["agree"] for row in rows)


def test_experiment_e11_rows():
    rows = experiment_e11_transforms()
    assert len(rows) == 3
    assert rows[0]["transformed_actions"] >= rows[0]["original_actions"]
