"""JSONL checkpointing of sweep results.

A :class:`SweepCheckpoint` is an append-only JSON-Lines file with one
record per completed sweep point::

    {"key": "<canonical parameters>", "parameters": {...}, "measurements": {...}}

The ``key`` is the canonical JSON serialisation of the point's parameter
assignment (sorted keys, compact separators), which makes the file a
**content-keyed memo**: a point is identified by *what* was computed,
not by its position in a grid, so a resumed sweep may reorder, extend or
interleave grids and still reuse every already-computed point.

Records are appended one at a time, immediately after each point
completes, and each record is a **single ``write()`` on an
``O_APPEND`` descriptor**, so concurrent writers sharing one checkpoint
path (a ``parallel > 1`` sweep, or several sweeps appending to the same
memo) never interleave partial lines: every line on disk was written by
exactly one writer.  A sweep killed mid-flight loses at most the record
being written; :meth:`load` tolerates a torn final line (and any other
corrupt line) by skipping it — the scheduler simply recomputes those
points.  Parameters and measurements must be JSON-serialisable; every
sweep in this library emits flat dictionaries of scalars.

Keys are **strictly canonical**: :func:`point_key` recursively
canonicalises the parameter assignment (sorted keys, tuples rendered as
lists) and *rejects* values outside the JSON scalar domain instead of
stringifying them.  Stringification (the former ``default=str``) let
distinct assignments collide — e.g. ``pathlib.Path("x")`` versus the
string ``"x"``, or any two objects with identical ``str()`` — after
which ``resume=True`` silently served the wrong cached measurements.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

__all__ = ["SweepCheckpoint", "canonical_parameters", "point_key"]

_SCALARS = (str, int, float, bool, type(None))


def canonical_parameters(value):
    """The canonical JSON-able form of a parameter value (recursive).

    Mappings are rebuilt with sorted string keys, sequences (lists and
    tuples alike) become lists, and scalars are restricted to the JSON
    domain — ``str``/``int``/``float``/``bool``/``None``.  Anything else
    raises instead of being stringified, so two distinct parameter
    values can never share a canonical form.  JSON is injective on this
    domain (``True`` renders differently from ``1``, ``2`` from
    ``2.0``), which makes :func:`point_key` collision-free.

    Raises:
        TypeError: on values outside the canonical domain (sets,
            callables, paths, enum members, arbitrary objects, ...).
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, Mapping):
        canonical = {}
        for key in value:
            if not isinstance(key, str):
                raise TypeError(
                    f"checkpoint parameter keys must be strings, got {key!r} "
                    f"of type {type(key).__name__}"
                )
            canonical[key] = canonical_parameters(value[key])
        return {key: canonical[key] for key in sorted(canonical)}
    if isinstance(value, (list, tuple)):
        return [canonical_parameters(item) for item in value]
    raise TypeError(
        f"checkpoint parameters must be JSON scalars, sequences or string-keyed "
        f"mappings; got {value!r} of type {type(value).__name__} — encode it as a "
        f"string (or a structure of scalars) explicitly instead of relying on str()"
    )


def point_key(parameters: Mapping) -> str:
    """The canonical content key of one parameter assignment.

    Raises:
        TypeError: when the assignment contains values outside the
            canonical JSON domain (see :func:`canonical_parameters`).
    """
    return json.dumps(canonical_parameters(parameters), sort_keys=True, separators=(",", ":"))


class SweepCheckpoint:
    """Append-only JSONL memo of completed sweep points (see module docs)."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)

    @property
    def path(self) -> Path:
        """The checkpoint file's location."""
        return self._path

    def exists(self) -> bool:
        """Whether any checkpoint data has been written."""
        return self._path.exists()

    def load(self) -> dict[str, dict]:
        """``{point_key: measurements}`` for every valid record on disk.

        Corrupt lines (torn final write, manual edits) are skipped; a
        later record for the same key wins, so re-running a point simply
        refreshes its memo entry.
        """
        if not self._path.exists():
            return {}
        memo: dict[str, dict] = {}
        for line in self._path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(record, dict)
                and isinstance(record.get("key"), str)
                and isinstance(record.get("measurements"), dict)
            ):
                memo[record["key"]] = record["measurements"]
        return memo

    def record(self, parameters: Mapping, measurements: Mapping) -> None:
        """Append one completed point (durable when this returns).

        The record is emitted as **one unbuffered ``write()``** of
        ``b"\\n" + line + b"\\n"`` on a descriptor opened in ``O_APPEND``
        mode, so concurrent writers sharing this path never interleave
        inside a record: the kernel serialises appends, and every
        interior line was written whole by exactly one writer.  The
        leading newline additionally isolates any torn fragment a killed
        writer left at the end of the file — :meth:`load` skips the
        fragment and the blank separator lines alike, so no seek-and-
        inspect of the previous tail (a read/write race under
        concurrency) is needed.
        """
        self._path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(
            {
                "key": point_key(parameters),
                "parameters": canonical_parameters(parameters),
                "measurements": dict(measurements),
            },
            default=str,
        )
        with self._path.open("ab", buffering=0) as handle:
            handle.write(b"\n" + line.encode("utf-8") + b"\n")

    def clear(self) -> None:
        """Delete the checkpoint file (missing is fine)."""
        try:
            self._path.unlink()
        except FileNotFoundError:
            pass
