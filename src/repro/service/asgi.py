"""A minimal ASGI toolkit for the verification service.

The service targets the plain `ASGI 3.0`_ protocol rather than a web
framework: the container this library supports ships no ``fastapi`` or
``starlette``, and the hard dependency rule is that everything —
including the full service test suite — must run on the standard
library alone.  This module provides the few pieces the service needs:

* :class:`Request` / :class:`Response` — one HTTP exchange, with JSON
  helpers;
* :func:`sse_event` — one Server-Sent-Events frame
  (``event: <name>\\ndata: <json>\\n\\n``);
* :class:`App` — an ASGI application with exact-path routing, lifespan
  startup/shutdown hooks and uniform JSON error rendering.

Any ASGI server (``uvicorn`` via the ``repro[service]`` extra) can
serve an :class:`App`; the in-process test client
(:mod:`repro.service.testing`) drives it with no server and no sockets.

.. _ASGI 3.0: https://asgi.readthedocs.io/en/latest/specs/main.html
"""

from __future__ import annotations

import json
import traceback
from typing import AsyncIterator, Awaitable, Callable
from urllib.parse import parse_qs

from repro.errors import AdmissionError, QueryTimeoutError, ReproError, ServiceError

__all__ = ["App", "Request", "Response", "json_response", "sse_event"]


def sse_event(event: str, data) -> bytes:
    """One Server-Sent-Events frame: ``event: <name>`` + JSON ``data`` line."""
    return f"event: {event}\ndata: {json.dumps(data, sort_keys=True)}\n\n".encode("utf-8")


class Request:
    """One HTTP request: the ASGI scope plus the fully received body."""

    def __init__(self, scope: dict, body: bytes) -> None:
        self.scope = scope
        self.body = body

    @property
    def method(self) -> str:
        """The request method (upper-case)."""
        return self.scope["method"]

    @property
    def path(self) -> str:
        """The request path."""
        return self.scope["path"]

    @property
    def query(self) -> dict[str, str]:
        """Query-string parameters (last value wins)."""
        raw = self.scope.get("query_string", b"").decode("utf-8")
        return {key: values[-1] for key, values in parse_qs(raw).items()}

    def json(self) -> dict:
        """The request body parsed as a JSON object.

        Raises:
            ServiceError: on an empty body, malformed JSON or a non-object
                payload (rendered as HTTP 400 by :class:`App`).
        """
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ServiceError(f"request body is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise ServiceError("request body must be a JSON object")
        return payload


class Response:
    """One HTTP response: status, headers and a body (bytes or a stream).

    A bytes body is sent as one ASGI message; an async-iterator body is
    streamed chunk by chunk (the SSE endpoints), with ``more_body``
    cleared on the final message.
    """

    def __init__(
        self,
        status: int = 200,
        *,
        body: bytes | AsyncIterator[bytes] = b"",
        content_type: str = "application/json",
        headers: list[tuple[str, str]] | None = None,
    ) -> None:
        self.status = status
        self.body = body
        self.headers = [("content-type", content_type)] + list(headers or [])

    async def send(self, send: Callable[[dict], Awaitable[None]]) -> None:
        """Emit this response as ASGI ``http.response.*`` messages."""
        await send(
            {
                "type": "http.response.start",
                "status": self.status,
                "headers": [
                    (name.encode("latin-1"), value.encode("latin-1"))
                    for name, value in self.headers
                ],
            }
        )
        if isinstance(self.body, bytes):
            await send({"type": "http.response.body", "body": self.body, "more_body": False})
            return
        async for chunk in self.body:
            await send({"type": "http.response.body", "body": chunk, "more_body": True})
        await send({"type": "http.response.body", "body": b"", "more_body": False})


def json_response(
    payload, status: int = 200, *, headers: list[tuple[str, str]] | None = None
) -> Response:
    """A ``Response`` carrying ``payload`` as sorted-key JSON."""
    return Response(
        status,
        body=json.dumps(payload, sort_keys=True).encode("utf-8"),
        headers=headers,
    )


def _error_response(error: BaseException) -> Response:
    """The uniform JSON rendering of a handler failure.

    Library errors map to meaningful statuses — admission rejections to
    429 (with ``Retry-After``), query timeouts to 504, other
    :class:`~repro.errors.ReproError` misuse to 400 — and anything else
    to a 500 carrying the exception type.
    """
    if isinstance(error, AdmissionError):
        return json_response(
            {"error": str(error), "kind": "admission"},
            status=429,
            headers=[("retry-after", "1")],
        )
    if isinstance(error, QueryTimeoutError):
        return json_response({"error": str(error), "kind": "timeout"}, status=504)
    if isinstance(error, ReproError):
        return json_response(
            {"error": str(error), "kind": type(error).__name__}, status=400
        )
    traceback.print_exception(error)
    return json_response(
        {"error": str(error), "kind": type(error).__name__}, status=500
    )


class App:
    """An ASGI application with exact-path routes and lifespan hooks.

    Routes are registered with :meth:`route` under ``(method, path)``;
    there are no path parameters (the service API does not need them).
    ``on_startup``/``on_shutdown`` callables run inside the lifespan
    protocol — a served app warms its sessions before the first request
    and tears them down when the server exits; the test client drives
    the same protocol in-process.
    """

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Callable[[Request], Awaitable[Response]]] = {}
        self._on_startup: list[Callable[[], None]] = []
        self._on_shutdown: list[Callable[[], None]] = []
        self.state: dict = {}

    def route(self, method: str, path: str):
        """Decorator registering an async handler under ``(method, path)``."""

        def register(handler: Callable[[Request], Awaitable[Response]]):
            self._routes[(method.upper(), path)] = handler
            return handler

        return register

    def on_startup(self, hook: Callable[[], None]):
        """Register a synchronous lifespan-startup hook (returns it)."""
        self._on_startup.append(hook)
        return hook

    def on_shutdown(self, hook: Callable[[], None]):
        """Register a synchronous lifespan-shutdown hook (returns it)."""
        self._on_shutdown.append(hook)
        return hook

    async def __call__(self, scope: dict, receive, send) -> None:
        """The ASGI entry point (``lifespan`` and ``http`` scopes)."""
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise ServiceError(f"unsupported ASGI scope type {scope['type']!r}")
        await self._http(scope, receive, send)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                try:
                    for hook in self._on_startup:
                        hook()
                except Exception as error:  # noqa: BLE001 - report through the protocol
                    await send({"type": "lifespan.startup.failed", "message": str(error)})
                    return
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                try:
                    for hook in self._on_shutdown:
                        hook()
                except Exception as error:  # noqa: BLE001 - report through the protocol
                    await send({"type": "lifespan.shutdown.failed", "message": str(error)})
                    return
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _http(self, scope: dict, receive, send) -> None:
        body = b""
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                return
            body += message.get("body", b"")
            if not message.get("more_body"):
                break
        handler = self._routes.get((scope["method"].upper(), scope["path"]))
        if handler is None:
            response = json_response({"error": f"no route for {scope['path']}"}, status=404)
        else:
            try:
                response = await handler(Request(scope, body))
            except Exception as error:  # noqa: BLE001 - uniform JSON error rendering
                response = _error_response(error)
        await response.send(send)
