"""E14 — sharded work-stealing exploration vs the single-shard engine.

Runs the same exhaustive reachability search (a predicate that never
holds) through the plain single-shard engine and through the sharded
engine (:mod:`repro.search.sharded`) under a ``(shards, workers)`` grid,
on the booking and warehouse case studies at recency bound 2.  Asserts
the acceptance criteria of the sharding PR:

* every sharded run explores a fragment bit-identical to the
  single-shard run (configuration count, edge count, truncation flag),
  and a reachable condition yields the identical minimal witness;
* on the booking study the 4-worker multiprocessing run is ≥ 1.5×
  faster than the single-shard engine.

The speedup assertion only makes sense where parallel successor
expansion can actually run in parallel: the engine is pure CPU-bound
Python, so on hosts with fewer than 4 usable CPUs (or platforms without
the fork start method, where the engine falls back to the deterministic
serial backend) the assertion is skipped while every correctness
assertion still runs.  Set ``REPRO_BENCH_QUICK=1`` for the shrunken CI
smoke version, which also skips the timing assertion — wall-clock ratios
on tiny inputs are noise-dominated.
"""

import os

from repro.harness.experiments import experiment_e14_sharded
from repro.harness.reporting import print_experiment
from repro.search import process_backend_available, usable_cpu_count

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
PARALLEL_CAPABLE = process_backend_available() and usable_cpu_count() >= 4


def test_e14_sharded(benchmark, run_once):
    rows = run_once(benchmark, experiment_e14_sharded, QUICK)
    print_experiment("E14", "Sharded work-stealing exploration vs single-shard engine", rows)

    # Correctness always: every (shards, workers) point explores the same
    # fragment as the single-shard engine, and witnesses are identical.
    for row in rows:
        assert row["results_match"], row

    if not QUICK and PARALLEL_CAPABLE:
        booking4 = next(
            row
            for row in rows
            if row["case"] == "booking" and row["shards"] == 4 and row["workers"] == 4
        )
        assert booking4["backend"] == "process", booking4
        assert booking4["speedup"] >= 1.5, booking4
