"""E11 — Appendix F.1–F.3: sizes of the relaxation constructions."""

from repro.harness.experiments import experiment_e11_transforms
from repro.harness.reporting import print_experiment


def test_e11_transforms(benchmark, run_once):
    rows = run_once(benchmark, experiment_e11_transforms)
    print_experiment("E11", "Model-transformation blow-ups (Appendix F.1-F.3)", rows)
    assert len(rows) == 3
