"""Tests for the MSONW formula construction and the MSO-FO → MSONW translation (Sections 6.4–6.6)."""

import pytest

from repro.encoding.analyzer import EncodingAnalyzer
from repro.encoding.encoder import encode_run
from repro.encoding.mso_builder import MSONWBuilder, valid_encoding_formula_size
from repro.encoding.translate import (
    evaluate_specification_via_encoding,
    reduction_formula,
    reduction_formula_size,
    translate_guard,
    translate_specification,
)
from repro.fol.parser import parse_query
from repro.msofo.patterns import (
    proposition_reachability_formula,
    response_formula,
    safety_formula,
)
from repro.msofo.semantics import holds_on_run
from repro.nestedwords.mso import NWFormula, evaluate_nw
from repro.recency.explorer import iterate_b_bounded_runs
from repro.recency.semantics import execute_b_bounded_labels


@pytest.fixture
def builder(example31):
    return MSONWBuilder(example31, 2)


@pytest.fixture
def figure2(example31, figure1_labels):
    run = execute_b_bounded_labels(example31, figure1_labels, bound=2)
    return encode_run(example31, run)


def test_letter_class_predicates_on_concrete_word(builder, figure2):
    from repro.nestedwords.mso import NWAssignment

    # Position 1 is the I0 letter (internal), position 3 is a push.
    assert evaluate_nw(builder.internal("x"), figure2, NWAssignment(positions={"x": 1}))
    assert not evaluate_nw(builder.head("x"), figure2, NWAssignment(positions={"x": 1}))
    assert evaluate_nw(builder.head("x"), figure2, NWAssignment(positions={"x": 2}))
    assert evaluate_nw(builder.push("x"), figure2, NWAssignment(positions={"x": 3}))
    assert not evaluate_nw(builder.pop("x"), figure2, NWAssignment(positions={"x": 3}))


def test_same_block_predicate(builder, figure2):
    from repro.nestedwords.mso import NWAssignment

    # Positions 2..5 form block B1; position 6 starts block B2.
    assert evaluate_nw(builder.same_block("x", "y"), figure2, NWAssignment(positions={"x": 2, "y": 5}))
    assert not evaluate_nw(builder.same_block("x", "y"), figure2, NWAssignment(positions={"x": 2, "y": 6}))


def test_add_delete_predicates(builder, figure2):
    from repro.nestedwords.mso import NWAssignment

    # Block B2 (head at position 6) is a beta block with s(u)=1: it deletes R(1).
    deletes_r1 = builder.deletes("R", (1,), "x")
    assert evaluate_nw(deletes_r1, figure2, NWAssignment(positions={"x": 6}))
    assert not evaluate_nw(deletes_r1, figure2, NWAssignment(positions={"x": 2}))
    # Block B1 (alpha) adds Q(-3).
    adds_q = builder.adds("Q", (-3,), "x")
    assert evaluate_nw(adds_q, figure2, NWAssignment(positions={"x": 2}))


def test_step_predicate(builder, figure2):
    from repro.nestedwords.mso import NWAssignment

    # The push ↓-2 of block B1 is matched by the pop ↑1 of block B2.
    step = builder.step(-2, 1, "x", "y")
    assert evaluate_nw(step, figure2, NWAssignment(positions={"x": 2, "y": 6}))
    assert not evaluate_nw(step, figure2, NWAssignment(positions={"x": 6, "y": 2}))


def test_formula_sizes_grow_with_bound(example31):
    size_b1 = valid_encoding_formula_size(example31, 1)
    size_b2 = valid_encoding_formula_size(example31, 2)
    assert 0 < size_b1 < size_b2


def test_reduction_formula_is_msonw(example31):
    specification = proposition_reachability_formula("p")
    formula = reduction_formula(example31, 1, specification)
    assert isinstance(formula, NWFormula)
    assert reduction_formula_size(example31, 1, specification) == formula.size()
    assert formula.size() > valid_encoding_formula_size(example31, 1)


def test_translate_guard_produces_msonw(builder, example31):
    from repro.recency.abstraction import symbolic_alphabet

    for label in symbolic_alphabet(example31, 2):
        action = example31.action(label.action_name)
        translated = translate_guard(builder, action.guard, label, "x")
        assert isinstance(translated, NWFormula)
        assert translated.size() >= 1


def test_translate_specification_produces_msonw(builder):
    for specification in (
        proposition_reachability_formula("p"),
        safety_formula(parse_query("exists u. R(u) & Q(u)")),
    ):
        translated = translate_specification(builder, specification)
        assert isinstance(translated, NWFormula)
        assert translated.is_sentence()


def test_semantic_translation_cross_validation(example31):
    """Direct MSO-FO evaluation and encoding-based evaluation agree on all explored runs."""
    from repro.dms.run import Run

    specifications = [
        proposition_reachability_formula("p"),
        safety_formula(parse_query("exists u. R(u) & Q(u)")),
        response_formula(parse_query("exists u. R(u)"), parse_query("exists u. Q(u)")),
    ]
    runs = [run for run in iterate_b_bounded_runs(example31, 2, 3, max_runs=12) if run.steps]
    assert runs
    for run in runs:
        analyzer = EncodingAnalyzer(example31, 2, encode_run(example31, run))
        truncated = Run(run.instances()[:-1])
        for specification in specifications:
            assert holds_on_run(specification, truncated) == evaluate_specification_via_encoding(
                specification, analyzer
            )


def test_encoding_analyzer_live_predicate(example31, figure2):
    analyzer = EncodingAnalyzer(example31, 2, figure2)
    # In block B2 (beta), index 1 (element e2) is deleted: not live; index 0 (e3) stays live.
    assert analyzer.live(2, 0)
    assert not analyzer.live(2, 1)
    assert analyzer.recent_size_before(2) == 2
