"""A small recursive-descent parser for FOL(R) queries.

Grammar (ASCII-friendly, precedence low → high)::

    query    := iff
    iff      := implies ( '<->' implies )*
    implies  := or ( '->' or )*              (right-associative)
    or       := and ( ('|' | 'or') and )*
    and      := unary ( ('&' | 'and') unary )*
    unary    := ('!' | 'not' | '¬') unary
              | ('exists' | 'forall') var (',' var)* '.' unary
              | primary
    primary  := 'true' | 'false'
              | var '=' var | var '!=' var
              | NAME '(' var (',' var)* ')' | NAME
              | '(' query ')'

Names starting with an upper-case letter with parentheses (or bare names
declared as propositions) are relational atoms; bare lower-case names in
argument/equality positions are data variables.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import QueryParseError
from repro.fol.syntax import (
    Atom,
    Equals,
    FalseQuery,
    Iff,
    Implies,
    Not,
    Query,
    TrueQuery,
    conjunction,
    disjunction,
    exists,
    forall,
)

__all__ = ["parse_query"]

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<lparen>\()|(?P<rparen>\))|(?P<comma>,)|(?P<dot>\.)"
    r"|(?P<iff><->|⇔)|(?P<implies>->|⇒)|(?P<neq>!=|≠)|(?P<eq>=)"
    r"|(?P<and>&&|&|∧)|(?P<or>\|\||\||∨)|(?P<not>!|¬)"
    r"|(?P<name>[A-Za-z_][A-Za-z_0-9']*))"
)

_KEYWORDS = {"true", "false", "and", "or", "not", "exists", "forall"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None or match.end() == position:
            if text[position:].strip():
                raise QueryParseError(f"unexpected character {text[position]!r} at {position}")
            break
        kind = match.lastgroup or ""
        value = match.group(kind)
        start = match.start(kind)
        if kind == "name" and value.lower() in _KEYWORDS:
            kind = value.lower()
        tokens.append(_Token(kind, value, start))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers -----------------------------------------------------

    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryParseError(f"unexpected end of query in {self._text!r}")
        self._index += 1
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    def _expect(self, kind: str) -> _Token:
        token = self._accept(kind)
        if token is None:
            found = self._peek()
            where = found.text if found else "end of input"
            raise QueryParseError(f"expected {kind!r} but found {where!r} in {self._text!r}")
        return token

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Query:
        query = self._iff()
        if self._peek() is not None:
            raise QueryParseError(
                f"trailing input {self._peek().text!r} in query {self._text!r}"
            )
        return query

    def _iff(self) -> Query:
        left = self._implies()
        while self._accept("iff"):
            right = self._implies()
            left = Iff(left, right)
        return left

    def _implies(self) -> Query:
        left = self._or()
        if self._accept("implies"):
            right = self._implies()
            return Implies(left, right)
        return left

    def _or(self) -> Query:
        parts = [self._and()]
        while self._accept("or"):
            parts.append(self._and())
        return parts[0] if len(parts) == 1 else disjunction(*parts)

    def _and(self) -> Query:
        parts = [self._unary()]
        while self._accept("and"):
            parts.append(self._unary())
        return parts[0] if len(parts) == 1 else conjunction(*parts)

    def _unary(self) -> Query:
        if self._accept("not"):
            return Not(self._unary())
        token = self._peek()
        if token is not None and token.kind in ("exists", "forall"):
            self._next()
            variables = [self._expect("name").text]
            while self._accept("comma"):
                variables.append(self._expect("name").text)
            self._expect("dot")
            # Quantifier scope extends as far to the right as possible.
            body = self._iff()
            builder = exists if token.kind == "exists" else forall
            return builder(tuple(variables), body)
        return self._primary()

    def _primary(self) -> Query:
        if self._accept("lparen"):
            inner = self._iff()
            self._expect("rparen")
            return inner
        if self._accept("true"):
            return TrueQuery()
        if self._accept("false"):
            return FalseQuery()
        name_token = self._expect("name")
        if self._accept("lparen"):
            arguments = [self._expect("name").text]
            while self._accept("comma"):
                arguments.append(self._expect("name").text)
            self._expect("rparen")
            return Atom(name_token.text, tuple(arguments))
        if self._accept("eq"):
            other = self._expect("name")
            return Equals(name_token.text, other.text)
        if self._accept("neq"):
            other = self._expect("name")
            return Not(Equals(name_token.text, other.text))
        # A bare name is a nullary atom (proposition).
        return Atom(name_token.text, ())


def parse_query(text: str) -> Query:
    """Parse the textual form of a FOL(R) query.

    Example:
        >>> parse_query("exists u. R(u) & !Q(u)")
        ... # doctest: +ELLIPSIS
        Exists(...)
    """
    return _Parser(text).parse()
