"""Tests for the traffic-replay subsystem (:mod:`repro.loadgen`).

Covers the sketch (unit + hypothesis properties: monotone quantiles,
bounds, exact merge associativity), metrics-fold reconciliation under
arbitrary interleavings, byte-deterministic seeded scripts and trace
round-trips, closed- and open-loop replay with the soak-invariant
audit, chaos behaviour (worker SIGKILL mid-soak, 429 saturation with
full readmission), tamper detection in the invariant checker, and the
``python -m repro.loadgen`` CLI.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.loadgen import (
    LoadReport,
    QuantileSketch,
    builtin_templates,
    check_invariants,
    generate_sessions,
    read_trace,
    request_totals,
    run_closed_loop,
    run_open_loop,
    trace_lines,
    vocabulary_case_studies,
    vocabulary_templates,
    write_trace,
)
from repro.loadgen.cli import main as loadgen_main
from repro.obs.metrics import MetricsRegistry
from repro.search import process_backend_available
from repro.service import AsgiClient, ServiceConfig, create_app

needs_fork = pytest.mark.skipif(
    not process_backend_available(), reason="fork start method unavailable"
)

_REPO = Path(__file__).resolve().parents[1]


# -- quantile sketch: unit ------------------------------------------------------


def test_sketch_quantiles_over_known_values():
    sketch = QuantileSketch(relative_error=0.01)
    for value in range(1, 101):
        sketch.observe(float(value))
    assert sketch.count == 100
    assert sketch.minimum == 1.0
    assert sketch.maximum == 100.0
    median = sketch.quantile(0.5)
    assert median == pytest.approx(50.0, rel=0.05)
    assert sketch.quantile(0.0) == pytest.approx(1.0, rel=0.05)
    assert sketch.quantile(1.0) == 100.0  # clamped to the observed max


def test_sketch_empty_and_invalid_inputs():
    sketch = QuantileSketch()
    assert sketch.quantile(0.5) is None
    assert sketch.mean() == 0.0
    with pytest.raises(ReproError):
        sketch.observe(-1.0)
    with pytest.raises(ReproError):
        sketch.quantile(1.5)
    with pytest.raises(ReproError):
        QuantileSketch(relative_error=0.0)
    with pytest.raises(ReproError):
        sketch.merge(QuantileSketch(relative_error=0.5))


def test_sketch_snapshot_round_trip():
    sketch = QuantileSketch()
    for value in (0.0, 0.001, 1.0, 250.0):
        sketch.observe(value)
    rebuilt = QuantileSketch.from_snapshot(json.loads(json.dumps(sketch.snapshot())))
    assert rebuilt.count == sketch.count
    assert rebuilt.minimum == sketch.minimum
    assert rebuilt.maximum == sketch.maximum
    assert rebuilt.buckets == sketch.buckets
    for q in (0.0, 0.5, 0.99, 1.0):
        assert rebuilt.quantile(q) == sketch.quantile(q)


# -- quantile sketch: properties ------------------------------------------------

_VALUES = st.lists(
    st.floats(min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def _filled(values: list[float]) -> QuantileSketch:
    sketch = QuantileSketch()
    for value in values:
        sketch.observe(value)
    return sketch


@settings(max_examples=50, deadline=None)
@given(_VALUES)
def test_sketch_quantiles_are_monotone_and_bounded(values):
    sketch = _filled(values)
    qs = [i / 20 for i in range(21)]
    results = [sketch.quantile(q) for q in qs]
    for earlier, later in zip(results, results[1:]):
        assert earlier <= later
    for result in results:
        assert min(values) <= result <= max(values)


@settings(max_examples=50, deadline=None)
@given(_VALUES)
def test_sketch_accuracy_within_relative_error(values):
    sketch = QuantileSketch(relative_error=0.01)
    for value in values:
        sketch.observe(value)
    ordered = sorted(values)
    for q in (0.0, 0.5, 0.9, 1.0):
        rank = max(1, math.ceil(q * len(ordered)))
        exact = ordered[rank - 1]
        approx = sketch.quantile(q)
        assert abs(approx - exact) <= 0.011 * exact + 1e-12


@settings(max_examples=50, deadline=None)
@given(_VALUES, _VALUES, _VALUES)
def test_sketch_merge_is_associative_and_commutative(a, b, c):
    left = _filled(a).merge(_filled(b)).merge(_filled(c))
    right = _filled(a).merge(_filled(b).merge(_filled(c)))
    flipped = _filled(c).merge(_filled(b)).merge(_filled(a))
    for other in (right, flipped):
        assert left.buckets == other.buckets
        assert left.count == other.count
        assert left.minimum == other.minimum
        assert left.maximum == other.maximum
        for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert left.quantile(q) == other.quantile(q)


# -- metrics-fold reconciliation under arbitrary interleavings ------------------


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=3), st.sampled_from(["ok", "error", "rejected"])),
        max_size=60,
    ),
    st.randoms(use_true_random=False),
)
def test_metrics_fold_reconciles_any_interleaving(events, rng):
    """Counters folded from per-worker registries in any order reconcile."""
    workers = [MetricsRegistry() for _ in range(4)]
    for worker, outcome in events:
        workers[worker].counter("service_requests_total", outcome=outcome).inc()
    snapshots = [registry.snapshot() for registry in workers]
    rng.shuffle(snapshots)
    folded = MetricsRegistry()
    for index, snapshot in enumerate(snapshots):
        folded.fold(snapshot, node=str(index))
    for outcome in ("ok", "error", "rejected"):
        want = sum(1 for _, kind in events if kind == outcome)
        assert folded.sum_counter("service_requests_total", outcome=outcome) == want


# -- session scripts and traces -------------------------------------------------


def test_generate_sessions_is_deterministic_and_seed_sensitive():
    first = trace_lines(generate_sessions(7, 5, requests_per_user=4))
    second = trace_lines(generate_sessions(7, 5, requests_per_user=4))
    other = trace_lines(generate_sessions(8, 5, requests_per_user=4))
    assert first == second
    assert first != other
    assert len(first) == 20
    for line in first:
        document = json.loads(line)
        assert document["endpoint"] in ("reachability", "convergence")
        assert ("bounds" in document["payload"]) == (document["endpoint"] == "convergence")


def test_trace_is_pythonhashseed_independent():
    """The serialized trace is byte-identical under different hash seeds."""
    program = (
        "from repro.loadgen import generate_sessions, trace_lines;"
        "print('\\n'.join(trace_lines(generate_sessions(3, 4, requests_per_user=3))))"
    )
    outputs = []
    for hash_seed in ("0", "424242"):
        env = {
            **os.environ,
            "PYTHONHASHSEED": hash_seed,
            "PYTHONPATH": str(_REPO / "src") + os.pathsep + os.environ.get("PYTHONPATH", ""),
        }
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(result.stdout)
    assert outputs[0] == outputs[1]


def test_trace_round_trip(tmp_path):
    scripts = generate_sessions(11, 3, requests_per_user=5)
    path = write_trace(scripts, tmp_path / "trace.jsonl")
    rebuilt = read_trace(path)
    assert rebuilt == scripts
    # Re-serializing the rebuilt scripts reproduces the bytes exactly.
    assert write_trace(rebuilt, tmp_path / "again.jsonl").read_bytes() == path.read_bytes()


def test_vocabulary_includes_corpus_entries():
    templates = vocabulary_templates(tier="smoke", limit=3, include_corpus=True)
    corpus = [template for template in templates if template.source == "corpus"]
    assert len(corpus) == 3
    assert len(templates) == len(builtin_templates()) + 3
    registry = vocabulary_case_studies(tier="smoke", limit=3, include_corpus=True)
    for template in corpus:
        assert template.case_study in registry
        system = registry[template.case_study]()
        assert system is registry[template.case_study]()  # cached object


# -- replay end to end ----------------------------------------------------------


def _fresh_service(max_concurrent: int = 8):
    metrics = MetricsRegistry()
    config = ServiceConfig(max_concurrent=max_concurrent, store=False, metrics=metrics)
    return create_app(config), metrics


@needs_fork
def test_closed_loop_replay_passes_all_invariants():
    app, metrics = _fresh_service()
    scripts = generate_sessions(0, 3, requests_per_user=3)
    with AsgiClient(app) as client:
        report = run_closed_loop(client, scripts, think_scale=0.0)
        audit = check_invariants(report, client=client, metrics=metrics)
    assert report.sent == 9
    assert report.count("ok") == 9
    assert report.latency.count == 9
    assert report.throughput > 0
    assert audit.ok, audit.problems
    assert audit.checked_verdicts > 0


@needs_fork
def test_closed_loop_soak_repeats_sessions_until_deadline():
    app, metrics = _fresh_service()
    scripts = generate_sessions(1, 2, requests_per_user=2)
    with AsgiClient(app) as client:
        report = run_closed_loop(client, scripts, think_scale=0.0, duration=3.0)
        audit = check_invariants(report, client=client, metrics=metrics)
    # A soak loops each session: more requests than one pass's worth.
    assert report.sent > 4
    assert audit.ok, audit.problems


@needs_fork
def test_open_loop_saturation_rejects_and_fully_readmits():
    app, metrics = _fresh_service(max_concurrent=1)
    scripts = generate_sessions(2, 6, requests_per_user=3)
    with AsgiClient(app) as client:
        report = run_open_loop(client, scripts, think_scale=0.0)
        assert report.count("rejected") > 0  # saturation produced 429s
        audit = check_invariants(report, client=client, metrics=metrics)
        assert audit.ok, audit.problems
        # Full readmission: a subsequent closed-loop pass is all-ok.
        again = run_closed_loop(client, generate_sessions(3, 1, requests_per_user=3))
        assert again.count("ok") == 3
        assert client.get("/healthz").json()["active_requests"] == 0


def test_report_sketches_and_json_shape():
    app, _ = _fresh_service()
    scripts = generate_sessions(4, 2, requests_per_user=2)
    streaming_only = [
        dataclasses.replace(
            script,
            requests=tuple(
                dataclasses.replace(
                    request,
                    stream=True,
                    endpoint="reachability",
                    payload={
                        "case_study": "example31",
                        "condition": "Exists x. R(x)",
                        "bound": 1,
                        "max_depth": 2,
                        "stream": True,
                    },
                )
                for request in script.requests
            ),
        )
        for script in scripts
    ]
    with AsgiClient(app) as client:
        report = run_closed_loop(client, streaming_only, think_scale=0.0)
    assert report.count("ok") == 4
    assert report.time_to_ready.count == 4
    assert report.time_to_final.count == 4
    assert report.time_to_ready.quantile(0.5) <= report.time_to_final.quantile(0.5)
    document = report.as_json()
    assert document["outcomes"] == {"ok": 4, "rejected": 0, "error": 0}
    assert document["latency"]["count"] == 4
    json.dumps(document)  # the whole report is JSON-serializable


# -- chaos ----------------------------------------------------------------------


@needs_fork
def test_worker_kill_mid_soak_respawns_and_recovers():
    app, metrics = _fresh_service()
    query = {"case_study": "example31", "condition": "Exists x. R(x)", "bound": 1, "max_depth": 2}
    with AsgiClient(app) as client:
        assert client.post("/v1/reachability", json_body=query).status == 200
        baseline = request_totals(metrics)  # the warm-up request above
        manager = app.state["manager"]
        keys = manager.session.warm_context_keys()
        assert keys
        victim = manager.session.pool.worker_pids(keys[0])[0]
        os.kill(victim, signal.SIGKILL)
        # SIGKILL delivery is asynchronous; wait for the process to die.
        for _ in range(200):
            try:
                os.kill(victim, 0)
            except OSError:
                break
            time.sleep(0.01)
        # The session respawns lazily: replayed traffic still succeeds
        # and the soak invariants (including health) hold afterwards.
        report = run_closed_loop(
            client, generate_sessions(5, 2, requests_per_user=2), think_scale=0.0
        )
        assert report.count("ok") == report.sent
        audit = check_invariants(report, client=client, metrics=metrics, baseline=baseline)
        assert audit.healthy_after_chaos, audit.problems
        assert audit.ok, audit.problems
        respawned = manager.session.pool.worker_pids(keys[0])
        assert victim not in respawned


@needs_fork
def test_429_storm_leaves_no_stuck_admission_slots():
    app, metrics = _fresh_service(max_concurrent=2)
    with AsgiClient(app) as client:
        manager = app.state["manager"]
        for _ in range(2):
            manager.acquire()
        try:
            storm = run_closed_loop(
                client, generate_sessions(6, 2, requests_per_user=3), think_scale=0.0
            )
        finally:
            for _ in range(2):
                manager.release()
        assert storm.count("rejected") == storm.sent  # fully saturated
        after = run_closed_loop(
            client, generate_sessions(7, 2, requests_per_user=2), think_scale=0.0
        )
        assert after.count("ok") == after.sent  # full readmission
        merged = LoadReport.collect(
            list(storm.outcomes) + list(after.outcomes), storm.duration + after.duration
        )
        audit = check_invariants(merged, client=client, metrics=metrics)
        assert audit.ok, audit.problems


# -- tamper detection -----------------------------------------------------------


@needs_fork
def test_invariant_checker_detects_tampered_verdicts_and_counters():
    app, metrics = _fresh_service()
    with AsgiClient(app) as client:
        report = run_closed_loop(
            client, generate_sessions(8, 1, requests_per_user=2), think_scale=0.0
        )
        after_replay = request_totals(metrics)
        assert check_invariants(report, client=client, metrics=metrics).ok
        # Later audits must discount the earlier audit's own probe
        # traffic: the non-replay counter growth is the baseline.
        drift = {k: v - after_replay[k] for k, v in request_totals(metrics).items()}
        tampered_outcomes = []
        for outcome in report.outcomes:
            if outcome.result is not None and "verdict" in outcome.result:
                wrong = dict(outcome.result)
                wrong["verdict"] = "fails" if wrong["verdict"] != "fails" else "holds"
                outcome = dataclasses.replace(outcome, result=wrong)
            tampered_outcomes.append(outcome)
        tampered = LoadReport.collect(tampered_outcomes, report.duration)
        audit = check_invariants(tampered, client=client, metrics=metrics, baseline=drift)
        assert not audit.verdicts_match
        assert audit.metrics_reconcile
        assert audit.problems
        drift = {k: v - after_replay[k] for k, v in request_totals(metrics).items()}
        metrics.counter("service_requests_total", outcome="ok").inc(5)
        audit = check_invariants(report, client=client, metrics=metrics, baseline=drift)
        assert not audit.metrics_reconcile


# -- CLI ------------------------------------------------------------------------


def test_cli_plan_only_writes_deterministic_trace(tmp_path, capsys):
    first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    for path in (first, second):
        assert (
            loadgen_main(
                ["--seed", "9", "--users", "3", "--requests", "2", "--trace-out", str(path), "--plan-only"]
            )
            == 0
        )
    assert first.read_bytes() == second.read_bytes()
    summary = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
    assert summary["users"] == 3
    assert summary["requests"] == 6


@needs_fork
def test_cli_replays_trace_with_invariants(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    write_trace(generate_sessions(10, 2, requests_per_user=2), trace)
    code = loadgen_main(
        ["--replay", str(trace), "--think-scale", "0", "--check-invariants"]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["sent"] == 4
    assert document["invariants"]["ok"] is True
    assert document["invariants"]["verdicts_match"] is True
    assert document["invariants"]["metrics_reconcile"] is True
    assert document["invariants"]["healthy_after_chaos"] is True
