"""Tests for FOL(R) syntax utilities and normalisation."""

from repro.database.instance import DatabaseInstance, Fact
from repro.fol.active import active_query, fresh_variable_names
from repro.fol.builder import QueryBuilder
from repro.fol.evaluator import answers, evaluate_sentence, satisfies
from repro.fol.normalize import (
    count_data_variables,
    eliminate_derived,
    is_positive_existential,
    is_union_of_conjunctive_queries,
    quantifier_depth,
    standardize_apart,
    to_nnf,
)
from repro.fol.parser import parse_query
from repro.fol.syntax import (
    And,
    Atom,
    Exists,
    Forall,
    Not,
    Or,
    conjunction,
    disjunction,
    exists,
    forall,
)


def test_free_and_bound_variables():
    query = parse_query("exists u. S(u, v)")
    assert query.free_variables() == frozenset({"v"})
    assert query.variables() == frozenset({"u", "v"})


def test_size_and_walk():
    query = parse_query("R(u) & !Q(u)")
    assert query.size() == 4
    assert len(list(query.walk())) == 4


def test_relations_collected():
    assert parse_query("R(u) & (Q(v) | p)").relations() == frozenset({"R", "Q", "p"})


def test_rename_consistent():
    query = parse_query("exists u. S(u, v)").rename({"v": "w"})
    assert query.free_variables() == frozenset({"w"})


def test_conjunction_disjunction_helpers():
    assert conjunction() == parse_query("true")
    assert isinstance(conjunction(Atom("p"), Atom("q")), And)
    assert isinstance(disjunction(Atom("p"), Atom("q")), Or)


def test_exists_forall_helpers():
    nested = exists(("u", "v"), Atom("S", ("u", "v")))
    assert isinstance(nested, Exists) and isinstance(nested.body, Exists)
    nested = forall("u", Atom("R", ("u",)))
    assert isinstance(nested, Forall)


def test_eliminate_derived_and_nnf_preserve_semantics(simple_schema):
    instance = DatabaseInstance.of(
        simple_schema, Fact.of("R", "e1"), Fact.of("Q", "e2"), Fact.of("p")
    )
    queries = [
        "p -> exists u. R(u)",
        "forall u. R(u) -> !Q(u)",
        "!(exists u. R(u) & Q(u))",
        "p <-> exists u. Q(u)",
    ]
    for text in queries:
        query = parse_query(text)
        assert evaluate_sentence(eliminate_derived(query), instance) == evaluate_sentence(
            query, instance
        )
        assert evaluate_sentence(to_nnf(query), instance) == evaluate_sentence(query, instance)


def test_nnf_pushes_negation_to_atoms():
    nnf = to_nnf(parse_query("!(R(u) & exists v. Q(v))"))
    for node in nnf.walk():
        if isinstance(node, Not):
            assert isinstance(node.operand, Atom)


def test_standardize_apart():
    query = parse_query("(exists u. R(u)) & exists u. Q(u)")
    renamed = standardize_apart(query)
    bound = [node.variable for node in renamed.walk() if isinstance(node, (Exists, Forall))]
    assert len(bound) == len(set(bound))


def test_fragment_classification():
    assert is_positive_existential(parse_query("exists u. R(u) & Q(u)"))
    assert not is_positive_existential(parse_query("!R(u)"))
    assert is_union_of_conjunctive_queries(parse_query("(exists u. R(u) & Q(u)) | p"))
    assert not is_union_of_conjunctive_queries(parse_query("!p | q"))


def test_quantifier_depth_and_variable_count():
    query = parse_query("exists u. exists v. S(u, v)")
    assert quantifier_depth(query) == 2
    assert count_data_variables(query) == 2


def test_active_query_characterises_adom(simple_schema):
    instance = DatabaseInstance.of(
        simple_schema, Fact.of("R", "e1"), Fact.of("S", "e2", "e3"), Fact.of("p")
    )
    active = active_query(simple_schema, "u")
    found = {sigma["u"] for sigma in answers(active, instance)}
    assert found == set(instance.active_domain())


def test_fresh_variable_names_avoid_collisions():
    names = fresh_variable_names(3, avoid=frozenset({"w1"}))
    assert "w1" not in names
    assert len(set(names)) == 3


def test_query_builder_validates(simple_schema):
    builder = QueryBuilder(simple_schema)
    guard = builder.and_(builder.prop("p"), builder.atom("R", "u"))
    assert guard.free_variables() == frozenset({"u"})
    import pytest

    from repro.errors import ArityError

    with pytest.raises(ArityError):
        builder.atom("R", "u", "v")
    parsed = builder.parse("exists u. R(u)")
    assert parsed.is_sentence()


def test_query_operator_sugar(simple_schema):
    builder = QueryBuilder(simple_schema)
    query = builder.prop("p") & ~builder.atom("Q", "u")
    instance = DatabaseInstance.of(simple_schema, Fact.of("p"), Fact.of("R", "e1"))
    assert satisfies(instance, query, {"u": "e1"})
