"""The unified exploration engine.

Both execution semantics of the reproduction — the unbounded
configuration graph ``C_S`` (:mod:`repro.dms`) and the recency-bounded
graph ``C_S^b`` (:mod:`repro.recency`) — explore a transition system
whose states are immutable configurations and whose edges are step
objects carrying ``.source`` and ``.target``.  The :class:`Engine` is
the single implementation of that exploration, parameterised over

* a **successor function** ``successors(state) -> iterable of edges``,
* a **frontier strategy** (``"bfs"``, ``"dfs"`` or ``"best-first"`` with
  a user heuristic — see :mod:`repro.search.frontier`),
* an **edge-retention mode** bounding memory (see below), and
* :class:`SearchLimits` bounding depth, state count and edge count.

States are hash-consed through an :class:`~repro.search.interning.InternTable`:
each distinct state is deep-hashed exactly once, after which the
frontier, the visited set and the parent map operate on dense integer
ids.

Edge-retention modes
--------------------

``"full"``
    every generated edge is kept (``SearchResult.edges``) together with
    the parent map; this matches the seed explorers' behaviour.
``"parents-only"``
    only the spanning-tree edge through which each state was first
    discovered is kept (the parent map), enough to reconstruct
    witnesses; per-state memory is O(1) instead of O(out-degree).
``"counts-only"``
    no edge objects are retained at all, only counters — the mode for
    large state-space sweeps that only report sizes.

Predicate search (:meth:`Engine.search`) always maintains the parent
map — regardless of retention — because witnesses are reconstructed by
walking parent links back to the root; under the ``"bfs"`` strategy the
reconstructed witness has minimal length.  This replaces the seed
behaviour of threading whole run prefixes through the frontier, which
copied and re-validated a length-``k`` prefix on every generated edge.

Depth-bounded completeness
--------------------------

Non-FIFO strategies can first reach a state along a long path — possibly
at the depth horizon, where it would never be expanded.  The engine
tracks the best known depth per state and *re-opens* a state whenever it
is re-reached strictly shallower, so every state reachable within
``max_depth`` is expanded regardless of strategy.  Under ``"bfs"``
states are always discovered at minimal depth, so re-opening never
triggers and the behaviour matches the seed explorers exactly; under
``"dfs"``/``"best-first"`` a re-opened state is expanded again, so
``edge_count`` may count some edges more than once.

Truncation semantics
--------------------

The engine reproduces the seed explorers' truncation behaviour exactly:
limits are checked after *every generated edge*, and hitting
``max_configurations`` or ``max_steps`` — even exactly on the last
successor of an otherwise-complete exploration — marks the result
``truncated``.  Callers that map truncated explorations to ``UNKNOWN``
verdicts (reachability) therefore keep their three-valued contracts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator

from repro.errors import SearchError
from repro.obs.metrics import resolve_metrics
from repro.obs.trace import get_tracer
from repro.search.frontier import make_frontier
from repro.search.interning import InternTable

__all__ = [
    "RETAIN_COUNTS",
    "RETAIN_FULL",
    "RETAIN_PARENTS",
    "RETENTION_MODES",
    "Engine",
    "SearchLimits",
    "SearchResult",
    "iterate_paths",
]

RETAIN_FULL = "full"
RETAIN_PARENTS = "parents-only"
RETAIN_COUNTS = "counts-only"
RETENTION_MODES = (RETAIN_FULL, RETAIN_PARENTS, RETAIN_COUNTS)


@dataclass(frozen=True)
class SearchLimits:
    """Limits bounding an exploration.

    Attributes:
        max_depth: maximum number of edges along any explored path.
        max_configurations: stop after this many distinct states.
        max_steps: stop after this many edges have been generated.
    """

    max_depth: int = 6
    max_configurations: int = 100_000
    max_steps: int = 500_000


@dataclass
class SearchResult:
    """Outcome of an engine exploration.

    Attributes:
        initial: the canonical initial state.
        interning: the intern table holding every discovered state.
        edges: retained edge objects (populated in ``"full"`` mode only).
        edge_count: number of edges *generated*, independent of retention.
        depth_reached: largest depth at which a state was expanded.
        truncated: whether a limit cut the exploration short.
        parents: ``state_id -> (parent_id, edge)`` spanning-tree links
            (empty in ``"counts-only"`` explorations).  A ``parent_id``
            of ``-1`` marks a cross-shard link in a per-shard partial
            result; :meth:`merge` re-keys it against the merged table.
        retention: the edge-retention mode used.
        depths: ``state_id -> best known discovery depth``; kept so that
            :meth:`merge` can resolve parent conflicts deterministically.
    """

    initial: Any
    interning: InternTable = field(default_factory=InternTable)
    edges: list = field(default_factory=list)
    edge_count: int = 0
    depth_reached: int = 0
    truncated: bool = False
    parents: dict = field(default_factory=dict)
    retention: str = RETAIN_FULL
    depths: dict = field(default_factory=dict)

    @property
    def state_count(self) -> int:
        """Number of distinct states discovered."""
        return len(self.interning)

    def states(self) -> Iterator[Any]:
        """The canonical states, in discovery order for engine results.

        Merged results (:meth:`merge`) list states in fold order — each
        operand's states in its own discovery order — which for shard
        partials is a shard-grouped permutation of the single-shard
        discovery order (same set, same count).
        """
        return self.interning.states()

    def levels(self) -> dict[int, tuple]:
        """State ids grouped by best-known discovery depth, depth-ascending.

        The per-level frontiers of the exploration: under ``"bfs"``
        level ``d`` holds exactly the states first discovered at depth
        ``d``.  The result store's delta verification
        (:mod:`repro.store.capture`) re-drives exploration level by
        level from cached expansions instead of from the initial
        configuration alone; these frontiers are also what the E18
        bench reports.  Ids within a level are sorted (discovery order
        under a single-shard engine).
        """
        grouped: dict[int, list] = {}
        for state_id, depth in self.depths.items():
            grouped.setdefault(depth, []).append(state_id)
        return {depth: tuple(sorted(ids)) for depth, ids in sorted(grouped.items())}

    def root_id(self) -> int:
        """The interned id of the initial state.

        Engine explorations always intern the root first (id 0); merged
        results may hold it at any id, so witness reconstruction resolves
        it through the table instead of assuming 0.
        """
        state_id = self.interning.id_of(self.initial)
        if state_id is None:
            raise SearchError("the initial state was never interned by this exploration")
        return state_id

    def path_to(self, state: Any) -> list:
        """The spanning-tree path (list of edges) from the root to ``state``.

        Raises:
            SearchError: when the state was never discovered or the
                parent map was not retained.
        """
        state_id = self.interning.id_of(state)
        if state_id is None:
            raise SearchError(f"state {state!r} was not discovered by this exploration")
        return self.path_to_id(state_id)

    def path_to_id(self, state_id: int) -> list:
        """Like :meth:`path_to` but addressed by interned id."""
        root = self.root_id()
        if not self.parents and state_id != root:
            raise SearchError(
                "witness reconstruction requires the parent map; "
                f"re-run with retention '{RETAIN_FULL}' or '{RETAIN_PARENTS}'"
            )
        path: list = []
        current = state_id
        while current != root:
            entry = self.parents.get(current)
            if entry is None:
                raise SearchError(
                    f"state id {current} has no parent link; per-shard partial results "
                    "must be merged (SearchResult.merge) before reconstructing witnesses"
                )
            parent, edge = entry
            if parent < 0:
                raise SearchError(
                    f"state id {current} was discovered through a cross-shard edge; "
                    "merge the shard results before reconstructing witnesses"
                )
            path.append(edge)
            current = parent
            if len(path) > len(self.interning):
                raise SearchError("parent links form a cycle; refusing to reconstruct a witness")
        path.reverse()
        return path

    # -- associative merging of shard results ----------------------------------

    def merge(self, other: "SearchResult") -> "SearchResult":
        """Combine two results into a new one (associative, non-mutating).

        Designed for folding the per-shard partial results of a sharded
        exploration (:mod:`repro.search.sharded`), where every state is
        owned by exactly one shard:

        * the visited sets are unioned (states re-interned left to right,
          so fold order fixes the merged discovery order);
        * ``edge_count`` adds up, ``depth_reached`` takes the maximum and
          ``truncated`` is OR-ed — *any* truncated shard marks the merged
          result truncated, which reachability maps to ``UNKNOWN`` (never
          ``FAILS``);
        * parent links are re-keyed against the merged table via their
          edge objects, repairing cross-shard links (``parent_id == -1``)
          so witness reconstruction works across shards.

        When both operands' intern tables are
        :class:`~repro.search.shm_interning.SharedInternTable` views of
        the *same* shared state store — the partials of a
        shared-interning exploration — the union and the parent
        re-keying run over **shared ids** (integer dictionary probes)
        instead of re-hashing every state per fold, which is what makes
        folding many shard partials cheap at scale.  The merged content
        is identical either way.

        When both operands carry a parent link for the same state (which
        never happens between shard partials), the link discovered at the
        smaller depth wins and the earlier operand wins ties, keeping the
        fold associative.  Both operands must share the retention mode.

        Raises:
            SearchError: on mismatched retention modes.
        """
        from repro.search.shm_interning import SharedInternTable

        if self.retention != other.retention:
            raise SearchError(
                f"cannot merge results with different retention modes "
                f"({self.retention!r} vs {other.retention!r})"
            )
        shared = (
            isinstance(self.interning, SharedInternTable)
            and isinstance(other.interning, SharedInternTable)
            and self.interning.store is other.interning.store
        )
        merged = SearchResult(
            initial=self.initial,
            retention=self.retention,
            interning=SharedInternTable(self.interning.store) if shared else InternTable(),
        )
        merged.edge_count = self.edge_count + other.edge_count
        merged.depth_reached = max(self.depth_reached, other.depth_reached)
        merged.truncated = self.truncated or other.truncated
        merged.edges = self.edges + other.edges
        table = merged.interning
        for operand in (self, other):
            for local_id, state in enumerate(operand.states()):
                if shared:
                    merged_id, _, _ = table.intern_shared(
                        operand.interning.shared_id_of(local_id), state
                    )
                else:
                    merged_id, _, _ = table.intern(state)
                depth = operand.depths.get(local_id)
                if depth is not None:
                    known = merged.depths.get(merged_id)
                    if known is None or depth < known:
                        merged.depths[merged_id] = depth
        entry_depths: dict = {}
        for operand in (self, other):
            for local_target, (_, edge) in operand.parents.items():
                target_id = _merge_key(table, operand.interning, local_target, shared)
                candidate_depth = operand.depths.get(local_target)
                known_depth = entry_depths.get(target_id)
                if target_id in merged.parents and (
                    candidate_depth is None or known_depth is None or candidate_depth >= known_depth
                ):
                    continue
                # Resolve the parent against the *union* of the operands'
                # visited sets — never intern a state neither operand
                # discovered.  A still-foreign source stays -1 (cross-shard
                # marker) and resolves once a later fold contributes the
                # owning shard; after a full merge_all every source is a
                # discovered state, so no -1 markers survive.
                if shared:
                    source_sid = table.store.id_for(edge.source)
                    parent_id = (
                        table.local_of_shared(source_sid)
                        if source_sid is not None
                        else table.id_of(edge.source)
                    )
                else:
                    parent_id = table.id_of(edge.source)
                merged.parents[target_id] = (parent_id if parent_id is not None else -1, edge)
                entry_depths[target_id] = candidate_depth
        return merged

    @classmethod
    def merge_all(cls, results: Iterable["SearchResult"]) -> "SearchResult":
        """Left fold of :meth:`merge` over a non-empty sequence of results."""
        merged = None
        for result in results:
            merged = result if merged is None else merged.merge(result)
        if merged is None:
            raise SearchError("merge_all requires at least one result")
        return merged


def _merge_key(table, operand_table, local_target: int, shared: bool) -> int | None:
    """The merged id of a partial result's parent-link target.

    On the shared fast path the target resolves by its shared id (an
    integer probe); otherwise by re-hashing the state, as before.
    """
    if shared:
        shared_id = operand_table.shared_id_of(local_target)
        if shared_id is not None:
            return table.local_of_shared(shared_id)
    return table.id_of(operand_table.state_of(local_target))


def _record_exploration(registry, engine_kind: str, result: "SearchResult", seconds: float) -> None:
    """Flush one completed exploration's boundary counters into ``registry``.

    Called once per :meth:`Engine.explore`/:meth:`Engine.search` — the
    hot loop itself is never instrumented; everything here is derived
    from aggregates the result already carries.  A "duplicate" is an
    edge whose target was already interned (including re-opens under
    non-FIFO strategies).
    """
    registry.counter("engine_explorations_total", engine=engine_kind).inc()
    registry.counter("engine_states_total", kind="interned").inc(result.state_count)
    duplicates = result.edge_count - (result.state_count - 1)
    if duplicates > 0:
        registry.counter("engine_states_total", kind="duplicate").inc(duplicates)
    registry.counter("engine_edges_total").inc(result.edge_count)
    registry.gauge("engine_depth_reached").high_water(result.depth_reached)
    registry.histogram("engine_explore_seconds", engine=engine_kind).observe(seconds)


class Engine:
    """Generic bounded explorer of a successor relation (see module docs).

    ``metrics=`` accepts a :class:`repro.obs.MetricsRegistry`; ``None``
    (the default) resolves to the process-wide registry at each call,
    which is the no-op null registry unless the harness (or a caller)
    installed one — so an uninstrumented exploration costs nothing.
    Counters are flushed at exploration boundaries only, never per edge.
    """

    __slots__ = ("_successors", "_limits", "_strategy", "_heuristic", "_retention", "_metrics")

    def __init__(
        self,
        successors: Callable[[Any], Iterable],
        *,
        limits: SearchLimits | None = None,
        strategy: str = "bfs",
        heuristic: Callable[[Any, int], Any] | None = None,
        retention: str = RETAIN_FULL,
        metrics=None,
    ) -> None:
        if retention not in RETENTION_MODES:
            raise SearchError(
                f"unknown edge-retention mode {retention!r}; expected one of {RETENTION_MODES}"
            )
        # Validate the strategy/heuristic combination eagerly.
        make_frontier(strategy, heuristic)
        self._successors = successors
        self._limits = limits or SearchLimits()
        self._strategy = strategy
        self._heuristic = heuristic
        self._retention = retention
        self._metrics = metrics

    @property
    def limits(self) -> SearchLimits:
        """The exploration limits."""
        return self._limits

    @property
    def strategy(self) -> str:
        """The frontier strategy name."""
        return self._strategy

    @property
    def retention(self) -> str:
        """The edge-retention mode."""
        return self._retention

    # -- exhaustive exploration ------------------------------------------------

    def explore(
        self,
        initial: Any,
        on_state: Callable[[Any, int], None] | None = None,
    ) -> SearchResult:
        """Explore every reachable state within the limits.

        ``on_state`` is invoked with each newly discovered canonical
        state and its discovery depth (the initial state at depth 0).
        """
        registry = resolve_metrics(self._metrics)
        started = perf_counter()
        with get_tracer().span("explore", engine="single", strategy=self._strategy):
            result = self._explore(initial, on_state)
        if registry.enabled:
            _record_exploration(registry, "single", result, perf_counter() - started)
        return result

    def _explore(
        self,
        initial: Any,
        on_state: Callable[[Any, int], None] | None,
    ) -> SearchResult:
        """The uninstrumented exploration loop behind :meth:`explore`."""
        keep_edges = self._retention == RETAIN_FULL
        keep_parents = self._retention != RETAIN_COUNTS
        result = SearchResult(initial=initial, retention=self._retention)
        table = result.interning
        root_id, root, _ = table.intern(initial)
        result.initial = root
        if on_state:
            on_state(root, 0)
        frontier = make_frontier(self._strategy, self._heuristic)
        frontier.push(root_id, 0, root)
        depths = result.depths
        depths[root_id] = 0
        limits = self._limits
        successors = self._successors
        while frontier:
            state_id, depth = frontier.pop()
            if depth > depths[state_id]:
                continue  # stale entry: the state was re-opened at a smaller depth
            state = table.state_of(state_id)
            if depth > result.depth_reached:
                result.depth_reached = depth
            if depth >= limits.max_depth:
                continue
            for edge in successors(state):
                result.edge_count += 1
                if keep_edges:
                    result.edges.append(edge)
                target_id, target, is_new = table.intern(edge.target)
                if is_new:
                    depths[target_id] = depth + 1
                    if keep_parents:
                        result.parents[target_id] = (state_id, edge)
                    if on_state:
                        on_state(target, depth + 1)
                    frontier.push(target_id, depth + 1, target)
                elif depth + 1 < depths[target_id]:
                    # Non-FIFO strategies can first reach a state along a
                    # long path (possibly at the depth horizon, where it
                    # would never be expanded); re-open it at the smaller
                    # depth so depth-bounded exploration stays complete.
                    depths[target_id] = depth + 1
                    if keep_parents:
                        result.parents[target_id] = (state_id, edge)
                    frontier.push(target_id, depth + 1, target)
                if len(table) >= limits.max_configurations or result.edge_count >= limits.max_steps:
                    result.truncated = True
                    return result
        return result

    # -- early-exit predicate search -------------------------------------------

    def search(
        self,
        initial: Any,
        predicate: Callable[[Any], bool],
        on_state: Callable[[Any, int], None] | None = None,
    ) -> tuple[list | None, SearchResult]:
        """Search for a state satisfying ``predicate``.

        Returns ``(path, result)`` where ``path`` is the list of edges
        from the root to the first satisfying state found (``[]`` when
        the initial state satisfies the predicate, ``None`` when no
        satisfying state was found within the limits).  The parent map
        is always retained so the witness can be reconstructed; under
        the ``"bfs"`` strategy it is a minimal-length witness.

        ``on_state`` is invoked with each newly discovered canonical
        state and its discovery depth, exactly as under :meth:`explore`
        (the state satisfying the predicate terminates the search before
        it is interned, so it never fires the callback).
        """
        registry = resolve_metrics(self._metrics)
        started = perf_counter()
        with get_tracer().span("search", engine="single", strategy=self._strategy):
            path, result = self._search(initial, predicate, on_state)
        if registry.enabled:
            _record_exploration(registry, "single", result, perf_counter() - started)
        return path, result

    def _search(
        self,
        initial: Any,
        predicate: Callable[[Any], bool],
        on_state: Callable[[Any, int], None] | None = None,
    ) -> tuple[list | None, SearchResult]:
        """The uninstrumented predicate-search loop behind :meth:`search`."""
        keep_edges = self._retention == RETAIN_FULL
        result = SearchResult(initial=initial, retention=self._retention)
        table = result.interning
        root_id, root, _ = table.intern(initial)
        result.initial = root
        if on_state:
            on_state(root, 0)
        if predicate(root):
            return [], result
        frontier = make_frontier(self._strategy, self._heuristic)
        frontier.push(root_id, 0, root)
        depths = result.depths
        depths[root_id] = 0
        limits = self._limits
        successors = self._successors
        while frontier:
            state_id, depth = frontier.pop()
            if depth > depths[state_id]:
                continue  # stale entry: the state was re-opened at a smaller depth
            state = table.state_of(state_id)
            if depth > result.depth_reached:
                result.depth_reached = depth
            if depth >= limits.max_depth:
                continue
            for edge in successors(state):
                result.edge_count += 1
                if keep_edges:
                    result.edges.append(edge)
                if predicate(edge.target):
                    path = result.path_to_id(state_id)
                    path.append(edge)
                    return path, result
                target_id, target, is_new = table.intern(edge.target)
                if is_new:
                    depths[target_id] = depth + 1
                    result.parents[target_id] = (state_id, edge)
                    if on_state:
                        on_state(target, depth + 1)
                    frontier.push(target_id, depth + 1, target)
                elif depth + 1 < depths[target_id]:
                    depths[target_id] = depth + 1
                    result.parents[target_id] = (state_id, edge)
                    frontier.push(target_id, depth + 1, target)
                if len(table) >= limits.max_configurations or result.edge_count >= limits.max_steps:
                    result.truncated = True
                    return None, result
        return None, result

    # -- path enumeration ------------------------------------------------------

    def iterate_paths(
        self,
        initial: Any,
        depth: int,
        max_paths: int | None = None,
    ) -> Iterator[tuple]:
        """Enumerate maximal paths as tuples of edges (explicit-stack DFS).

        A path is yielded when it reaches ``depth`` edges or ends in a
        state with no successor (dead end).  The enumeration order is
        depth-first in successor order — identical to the recursive seed
        enumeration — but uses an explicit stack of iterators, so it is
        not limited by the interpreter recursion limit and supports
        depths in the thousands.  ``max_paths`` truncates the
        enumeration after that many yielded paths.
        """
        return iterate_paths(initial, self._successors, depth, max_paths)


def iterate_paths(
    initial: Any,
    successors: Callable[[Any], Iterable],
    depth: int,
    max_paths: int | None = None,
) -> Iterator[tuple]:
    """Module-level form of :meth:`Engine.iterate_paths` (see there)."""
    if depth < 0:
        raise SearchError("path enumeration depth must be non-negative")
    if max_paths is not None and max_paths <= 0:
        return
    count = 0

    def expansion(state: Any, remaining: int) -> list | None:
        """The successor edges to descend into, or ``None`` at a leaf."""
        if remaining == 0:
            return None
        steps = list(successors(state))
        return steps if steps else None

    root_steps = expansion(initial, depth)
    if root_steps is None:
        yield ()
        return
    path: list = []
    stack: list[Iterator] = [iter(root_steps)]
    while stack:
        edge = next(stack[-1], None)
        if edge is None:
            stack.pop()
            if path:
                path.pop()
            continue
        path.append(edge)
        child_steps = expansion(edge.target, depth - len(path))
        if child_steps is None:
            count += 1
            yield tuple(path)
            path.pop()
            if max_paths is not None and count >= max_paths:
                return
        else:
            stack.append(iter(child_steps))
