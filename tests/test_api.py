"""Tests for the unified facade (:mod:`repro.api`).

Covers the facade's three contracts:

* **One surface, same verdicts** — :func:`repro.api.run_reachability`
  and the legacy ``modelcheck.reachability`` entry points (now shims
  over it) return bit-identical results for every combination of
  bounded/unbounded semantics and proposition/query conditions;
* **Options** — :class:`ExplorationOptions` round-trips the legacy
  limits objects and its execution-shape knobs never change verdicts;
* **Sessions** — a warm :class:`Session` serves inline and isolated
  queries with identical verdicts, enforces isolated timeouts by
  killing the worker while staying healthy, and serves ≥8 concurrent
  isolated queries over shared pooled engines.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import ExplorationOptions, Session, run_reachability
from repro.casestudies.booking import booking_agency_system
from repro.casestudies.warehouse import warehouse_system
from repro.dms.graph import ExplorationLimits
from repro.errors import ModelCheckingError, QueryTimeoutError, SessionError
from repro.fol.parser import parse_query
from repro.modelcheck.reachability import (
    proposition_reachable,
    proposition_reachable_bounded,
    query_reachable,
    query_reachable_bounded,
)
from repro.recency.explorer import RecencyExplorationLimits
from repro.search import process_backend_available

needs_fork = pytest.mark.skipif(
    not process_backend_available(), reason="fork start method unavailable"
)

SUBMITTED = "Exists x. BSubmitted(x)"


@pytest.fixture(scope="module")
def booking():
    return booking_agency_system()


@pytest.fixture(scope="module")
def warehouse():
    return warehouse_system()


def summary(result):
    """The verdict-relevant fields of a result, witness included."""
    return (
        result.reachable,
        result.configurations_explored,
        result.edges_explored,
        result.depth,
        result.bound,
        None if result.witness is None else len(result.witness),
    )


# -- facade vs legacy entry points ---------------------------------------------


def test_facade_matches_query_reachable(booking):
    condition = parse_query(SUBMITTED)
    legacy = query_reachable(booking, condition, max_depth=4, store=False)
    facade = run_reachability(
        booking, condition, options=ExplorationOptions(max_depth=4), store=False
    )
    assert summary(facade) == summary(legacy)


def test_facade_matches_query_reachable_bounded(booking):
    condition = parse_query(SUBMITTED)
    legacy = query_reachable_bounded(booking, condition, bound=2, max_depth=4, store=False)
    facade = run_reachability(
        booking, condition, bound=2, options=ExplorationOptions(max_depth=4), store=False
    )
    assert summary(facade) == summary(legacy)


def test_facade_matches_proposition_entry_points(booking):
    for bound in (None, 1):
        legacy = (
            proposition_reachable(booking, "open", max_depth=2, store=False)
            if bound is None
            else proposition_reachable_bounded(
                booking, "open", bound=bound, max_depth=2, store=False
            )
        )
        facade = run_reachability(
            booking, "open", bound=bound, options=ExplorationOptions(max_depth=2), store=False
        )
        assert summary(facade) == summary(legacy)


def test_on_state_streams_discovery_order(booking):
    seen: list[tuple[int, int]] = []
    result = run_reachability(
        booking,
        parse_query(SUBMITTED),
        bound=2,
        options=ExplorationOptions(max_depth=4),
        store=False,
        on_state=lambda configuration, depth: seen.append((len(seen), depth)),
    )
    assert result.configurations_explored > 0
    assert seen[0][1] == 0  # the root fires first, at depth zero
    depths = [depth for _, depth in seen]
    assert depths == sorted(depths)  # BFS discovery order is by depth
    assert len(seen) >= result.configurations_explored


# -- options -------------------------------------------------------------------


def test_options_from_limits_round_trips():
    graph = ExplorationLimits(max_depth=3, max_configurations=10, max_steps=20)
    recency = RecencyExplorationLimits(max_depth=5, max_configurations=7, max_steps=9)
    assert ExplorationOptions.from_limits(graph).graph_limits() == graph
    assert ExplorationOptions.from_limits(recency).recency_limits() == recency
    assert ExplorationOptions.from_limits(None, max_depth=8).max_depth == 8


def test_options_replace_and_single_shard():
    options = ExplorationOptions(max_depth=4)
    assert options.single_shard
    sharded = options.replace(shards=2, workers=2)
    assert not sharded.single_shard
    assert sharded.max_depth == 4
    assert options.shards == 1  # frozen: the original is untouched


def test_execution_shape_does_not_change_verdicts(booking):
    condition = parse_query(SUBMITTED)
    single = run_reachability(
        booking, condition, bound=2, options=ExplorationOptions(max_depth=4), store=False
    )
    sharded = run_reachability(
        booking,
        condition,
        bound=2,
        options=ExplorationOptions(max_depth=4, shards=2, workers=2),
        store=False,
    )
    assert summary(sharded) == summary(single)


def test_non_sentence_condition_is_rejected(booking):
    with pytest.raises(ModelCheckingError):
        run_reachability(booking, parse_query("BSubmitted(x)"), store=False)


# -- sessions ------------------------------------------------------------------


@pytest.fixture(scope="module")
def session():
    with Session(store=False) as warm:
        yield warm


def test_session_inline_matches_facade(booking, session):
    condition = parse_query(SUBMITTED)
    direct = run_reachability(
        booking, condition, bound=2, options=ExplorationOptions(max_depth=4), store=False
    )
    inline = session.run_reachability(
        booking, condition, bound=2, options=ExplorationOptions(max_depth=4)
    )
    assert summary(inline) == summary(direct)


@needs_fork
def test_session_isolated_matches_inline(booking, session):
    condition = parse_query(SUBMITTED)
    options = ExplorationOptions(max_depth=4)
    inline = session.run_reachability(booking, condition, bound=2, options=options)
    isolated = session.run_reachability_isolated(booking, condition, bound=2, options=options)
    assert summary(isolated) == summary(inline)
    assert any(key[0] == "api-query" for key in session.warm_context_keys())


@needs_fork
def test_isolated_timeout_kills_worker_but_session_stays_healthy(booking, session):
    deep = ExplorationOptions(max_depth=9, max_configurations=10**9, max_steps=10**9)
    condition = parse_query("Exists x. BAccepted(x)")
    with pytest.raises(QueryTimeoutError):
        session.run_reachability_isolated(booking, condition, options=deep, timeout=0.5)
    # The worker was killed; the very next isolated query respawns it
    # and still matches the inline verdict bit for bit.
    small = ExplorationOptions(max_depth=3)
    after = session.run_reachability_isolated(booking, condition, bound=1, options=small)
    inline = session.run_reachability(booking, condition, bound=1, options=small)
    assert summary(after) == summary(inline)


@needs_fork
def test_eight_concurrent_isolated_queries_share_warm_engines(booking, warehouse, session):
    condition = parse_query(SUBMITTED)
    options = ExplorationOptions(max_depth=3)
    expected = {
        "booking": summary(session.run_reachability(booking, condition, bound=1, options=options)),
        "warehouse": summary(session.run_reachability(warehouse, "open", bound=1, options=options)),
    }
    results: dict[int, tuple] = {}
    errors: list[Exception] = []

    def query(index: int) -> None:
        try:
            if index % 2 == 0:
                result = session.run_reachability_isolated(
                    booking, condition, bound=1, options=options
                )
                results[index] = ("booking", summary(result))
            else:
                result = session.run_reachability_isolated(
                    warehouse, "open", bound=1, options=options
                )
                results[index] = ("warehouse", summary(result))
        except Exception as error:  # noqa: BLE001 - surfaced by the assertion below
            errors.append(error)

    threads = [threading.Thread(target=query, args=(index,)) for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    assert not errors
    assert len(results) == 8
    for name, got in results.values():
        assert got == expected[name]
    # Two systems, one graph each: all eight queries were served by the
    # two matching warm contexts (other tests of this module may have
    # warmed further contexts on the shared session).
    from repro.store.canonical import system_hash

    contexts = set(session.warm_context_keys())
    assert ("api-query", system_hash(booking), "recency:1") in contexts
    assert ("api-query", system_hash(warehouse), "recency:1") in contexts


def test_isolated_rejects_heuristics(booking, session):
    options = ExplorationOptions(
        strategy="best-first", heuristic=lambda configuration, depth: depth
    )
    with pytest.raises(ModelCheckingError):
        session.run_reachability_isolated(booking, "open", options=options)


def test_isolated_validates_condition_coordinator_side(warehouse, session):
    with pytest.raises(Exception) as caught:
        session.run_reachability_isolated(warehouse, "no-such-proposition")
    assert "no-such-proposition" in str(caught.value)


def test_closed_session_refuses_queries(booking):
    session = Session(store=False)
    session.close()
    session.close()  # idempotent
    with pytest.raises(SessionError):
        session.run_reachability(booking, "open")


def test_session_convergence_delegates(booking, session):
    condition = parse_query(SUBMITTED)
    options = ExplorationOptions(max_depth=4)
    rows = session.reachability_bound_sweep(booking, condition, (0, 1, 2), options=options)
    assert [entry.bound for entry in rows] == [0, 1, 2]
    reference = session.run_reachability(booking, condition, options=options)
    converged = next(
        (entry.bound for entry in rows if entry.verdict == reference.reachable), None
    )
    assert converged is not None
