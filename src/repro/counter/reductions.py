"""The undecidability reductions of Appendix D.

Both reductions turn a two-counter machine ``M`` and a target state
``q_f`` into a DMS ``S⟨M, q_f⟩`` such that ``q_f`` is reachable in ``M``
iff the proposition ``S_{q_f}`` is reachable in the DMS:

* :func:`unary_encoding` uses **two unary relations** ``C1, C2`` and full
  FOL guards (counter values are the cardinalities of the relations);
* :func:`binary_encoding` uses **one binary relation** ``Succ`` plus the
  unary markers ``Top1, Top2, Zero`` and only UCQ guards (counter values
  are distances along the ``Succ`` chain, Figure 6).

Note: the paper lists the zero-test action of the unary encoding with a
parameter ``u`` that does not occur free in its guard; since the model
requires ``α·free = Free-Vars(guard)``, the reduction here uses the
equivalent parameterless action.
"""

from __future__ import annotations

from repro.database.instance import DatabaseInstance, Fact
from repro.database.schema import Schema
from repro.dms.action import Action
from repro.dms.system import DMS
from repro.counter.machine import CounterMachine, CounterOperation
from repro.errors import CounterMachineError
from repro.fol.syntax import And, Exists, Not, atom

__all__ = ["state_proposition", "unary_encoding", "binary_encoding"]


def state_proposition(state: str) -> str:
    """The proposition name ``S_q`` tracking control state ``q``."""
    return f"S_{state}"


def _require_two_counters(machine: CounterMachine) -> None:
    if machine.counter_count != 2:
        raise CounterMachineError("the Appendix D reductions are stated for two-counter machines")


def unary_encoding(machine: CounterMachine) -> DMS:
    """The reduction with two unary relations and FOL guards (Appendix D)."""
    _require_two_counters(machine)
    relations = [("C1", 1), ("C2", 1)] + [(state_proposition(q), 0) for q in sorted(machine.states)]
    schema = Schema.of(*relations)
    initial = DatabaseInstance.of(schema, Fact(state_proposition(machine.initial_state)))
    actions = []
    for index, instruction in enumerate(machine.instructions):
        source = state_proposition(instruction.source)
        target = state_proposition(instruction.target)
        counter_relation = f"C{instruction.counter}"
        name = f"t{index}_{instruction.operation.value}_c{instruction.counter}"
        if instruction.operation is CounterOperation.INC:
            actions.append(
                Action.create(
                    name,
                    schema,
                    parameters=(),
                    fresh=("v",),
                    guard=atom(source),
                    delete=[Fact(source)],
                    add=[Fact(counter_relation, ("v",)), Fact(target)],
                )
            )
        elif instruction.operation is CounterOperation.DEC:
            actions.append(
                Action.create(
                    name,
                    schema,
                    parameters=("u",),
                    fresh=(),
                    guard=And(atom(source), atom(counter_relation, "u")),
                    delete=[Fact(counter_relation, ("u",)), Fact(source)],
                    add=[Fact(target)],
                )
            )
        else:  # IFZ
            actions.append(
                Action.create(
                    name,
                    schema,
                    parameters=(),
                    fresh=(),
                    guard=And(atom(source), Not(Exists("u", atom(counter_relation, "u")))),
                    delete=[Fact(source)],
                    add=[Fact(target)],
                )
            )
    return DMS.create(schema, initial, actions, name=f"unary({machine.name})")


def binary_encoding(machine: CounterMachine) -> DMS:
    """The reduction with one binary relation and UCQ guards (Appendix D, Figure 6)."""
    _require_two_counters(machine)
    relations = [("Top1", 1), ("Top2", 1), ("Zero", 1), ("Succ", 2), ("S_init", 0)]
    relations += [(state_proposition(q), 0) for q in sorted(machine.states)]
    schema = Schema.of(*relations)
    initial = DatabaseInstance.of(schema, Fact("S_init"))
    actions = [
        Action.create(
            "init",
            schema,
            parameters=(),
            fresh=("v",),
            guard=atom("S_init"),
            delete=[Fact("S_init")],
            add=[
                Fact(state_proposition(machine.initial_state)),
                Fact("Top1", ("v",)),
                Fact("Top2", ("v",)),
                Fact("Zero", ("v",)),
            ],
        )
    ]
    for index, instruction in enumerate(machine.instructions):
        source = state_proposition(instruction.source)
        target = state_proposition(instruction.target)
        top = f"Top{instruction.counter}"
        name = f"t{index}_{instruction.operation.value}_c{instruction.counter}"
        if instruction.operation is CounterOperation.INC:
            actions.append(
                Action.create(
                    name,
                    schema,
                    parameters=("u",),
                    fresh=("v",),
                    guard=And(atom(source), atom(top, "u")),
                    delete=[Fact(source), Fact(top, ("u",))],
                    add=[Fact(target), Fact("Succ", ("u", "v")), Fact(top, ("v",))],
                )
            )
        elif instruction.operation is CounterOperation.DEC:
            actions.append(
                Action.create(
                    name,
                    schema,
                    parameters=("u1", "u2"),
                    fresh=(),
                    guard=And(And(atom(source), atom("Succ", "u1", "u2")), atom(top, "u2")),
                    delete=[Fact(source), Fact("Succ", ("u1", "u2")), Fact(top, ("u2",))],
                    add=[Fact(target), Fact(top, ("u1",))],
                )
            )
        else:  # IFZ
            actions.append(
                Action.create(
                    name,
                    schema,
                    parameters=("u",),
                    fresh=(),
                    guard=And(And(atom(source), atom(top, "u")), atom("Zero", "u")),
                    delete=[Fact(source)],
                    add=[Fact(target)],
                )
            )
    return DMS.create(schema, initial, actions, name=f"binary({machine.name})")
