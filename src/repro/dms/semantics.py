"""Execution semantics of a DMS (paper, Section 3).

The module implements:

* instantiating substitutions (the four conditions of the paper),
* the effect of applying an action under a substitution
  (``I' = (I − Substitute(Del, σ)) + Substitute(Add, σ)``,
  ``H' = H ∪ σ(v⃗)``),
* enumeration of all successors of a configuration when the fresh values
  are drawn canonically from a :class:`~repro.database.domain.FreshValueAllocator`.

Fresh values range over an infinite domain, so the *raw* configuration
graph is infinitely branching; successor enumeration therefore always
uses canonical fresh values (the least unused standard names), which is
sound for verification by the isomorphism-modulo-permutation argument of
Appendix E.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.database.domain import FreshValueAllocator, Value
from repro.database.instance import DatabaseInstance
from repro.database.substitution import Substitution
from repro.dms.action import Action
from repro.dms.configuration import Configuration
from repro.dms.run import ExtendedRun, Step
from repro.dms.system import DMS
from repro.errors import ExecutionError
from repro.fol.evaluator import iter_answers, satisfies

__all__ = [
    "is_instantiating_substitution",
    "apply_action",
    "successor_configuration",
    "enumerate_guard_answers",
    "enumerate_successors",
    "execute_labels",
    "initial_configuration",
]


def initial_configuration(system: DMS) -> Configuration:
    """The initial configuration ``⟨I0, adom(I0)⟩`` (``adom(I0) = ∅`` normally)."""
    return Configuration.initial(system.initial_instance)


def is_instantiating_substitution(
    action: Action,
    configuration: Configuration,
    sigma: Mapping[str, Value],
) -> bool:
    """Check the four conditions for ``σ`` to instantiate ``α`` at ``⟨I, H⟩``.

    1. every parameter is mapped into ``adom(I)``;
    2. every fresh-input variable is mapped to a history-fresh value;
    3. the fresh-input variables are mapped injectively;
    4. the guard holds: ``I, σ|u⃗ ⊨ Q``.
    """
    instance = configuration.instance
    adom = configuration.active_domain
    history = configuration.history
    substitution = Substitution(dict(sigma))
    for parameter in action.parameters:
        if parameter not in substitution or substitution[parameter] not in adom:
            return False
    for fresh_variable in action.fresh:
        if fresh_variable not in substitution or substitution[fresh_variable] in history:
            return False
    if not substitution.is_injective_on(action.fresh):
        return False
    guard_binding = substitution.restrict(action.parameters)
    return satisfies(instance, action.guard, guard_binding)


def apply_action(
    action: Action,
    configuration: Configuration,
    sigma: Mapping[str, Value],
    check: bool = True,
) -> Configuration:
    """Apply ``α`` under ``σ`` at ``⟨I, H⟩`` and return ``⟨I', H'⟩``.

    Raises:
        ExecutionError: when ``check`` is set and ``σ`` is not an
            instantiating substitution for ``α`` at the configuration.
    """
    if check and not is_instantiating_substitution(action, configuration, sigma):
        raise ExecutionError(
            f"{dict(sigma)!r} is not an instantiating substitution for {action.name} "
            f"at {configuration}"
        )
    substitution = Substitution(dict(sigma))
    deletions = action.deletions.substitute(substitution.restrict(action.parameters))
    additions = action.additions.substitute(substitution)
    new_instance = (configuration.instance - deletions) + additions
    new_history = configuration.extend_history(
        substitution[v] for v in action.fresh
    )
    return Configuration(instance=new_instance, history=new_history)


def successor_configuration(
    action: Action,
    configuration: Configuration,
    sigma: Mapping[str, Value],
    constraints=None,
) -> Configuration | None:
    """Like :func:`apply_action` but returns ``None`` when not applicable.

    When ``constraints`` is a non-empty
    :class:`~repro.database.constraints.ConstraintSet`, the successor is
    suppressed if it violates a constraint (blocking semantics of
    Example 4.3).
    """
    if not is_instantiating_substitution(action, configuration, sigma):
        return None
    successor = apply_action(action, configuration, sigma, check=False)
    if constraints and not constraints.satisfied_by(successor.instance):
        return None
    return successor


def enumerate_guard_answers(
    action: Action, instance: DatabaseInstance
) -> Iterator[Substitution]:
    """All guard answers ``σ : u⃗ → adom(I)`` with ``I, σ ⊨ Q``, deterministically ordered."""
    answers = sorted(iter_answers(action.guard, instance), key=lambda s: sorted(s.items(), key=repr).__repr__())
    for answer in answers:
        yield Substitution({u: answer[u] for u in action.parameters})


def enumerate_successors(
    system: DMS,
    configuration: Configuration,
    actions: Sequence[Action] | None = None,
) -> Iterator[Step]:
    """Enumerate all canonical successors of a configuration.

    The fresh-input variables are bound to the least standard names not in
    the history (canonical choice; Appendix E makes this without loss of
    generality).  Each yielded :class:`Step` carries the full substitution.
    """
    chosen_actions = tuple(actions) if actions is not None else system.actions
    for action in chosen_actions:
        for guard_answer in enumerate_guard_answers(action, configuration.instance):
            allocator = FreshValueAllocator(used=configuration.history)
            fresh_values = allocator.fresh_many(len(action.fresh))
            sigma = guard_answer.merge(dict(zip(action.fresh, fresh_values)))
            successor = successor_configuration(
                action, configuration, sigma, constraints=system.constraints
            )
            if successor is None:
                continue
            yield Step(
                source=configuration,
                action=action,
                substitution=sigma,
                target=successor,
            )


def execute_labels(
    system: DMS,
    labels: Iterable[tuple[str, Mapping[str, Value]]],
    check: bool = True,
) -> ExtendedRun:
    """Replay a generating sequence ``⟨α0:σ0⟩⟨α1:σ1⟩...`` from the initial configuration.

    Args:
        system: the DMS.
        labels: pairs of action name and substitution.
        check: validate each substitution against the execution semantics.

    Returns:
        The extended run prefix induced by the labels.
    """
    configuration = initial_configuration(system)
    run = ExtendedRun(configuration)
    for action_name, sigma in labels:
        action = system.action(action_name)
        target = apply_action(action, configuration, sigma, check=check)
        if check and system.constraints and not system.constraints.satisfied_by(target.instance):
            raise ExecutionError(
                f"action {action_name} under {dict(sigma)!r} violates the database constraints"
            )
        step = Step(
            source=configuration,
            action=action,
            substitution=Substitution(dict(sigma)),
            target=target,
        )
        run = run.extend(step)
        configuration = target
    return run
