"""Tests for the recency-indexing abstraction, Concr and canonical runs (Section 6.1)."""

import pytest

from repro.recency.abstraction import (
    SymbolicSubstitution,
    abstract_run,
    abstract_substitution,
    symbolic_alphabet,
    symbolic_substitutions_for_action,
)
from repro.recency.canonical import (
    is_canonical_run,
    run_isomorphism,
    runs_equivalent_modulo_permutation,
)
from repro.recency.concretize import ConcretizationError, canonicalize_run, concretize_word, is_valid_abstract_word
from repro.recency.explorer import RecencyExplorer, RecencyExplorationLimits, iterate_b_bounded_runs
from repro.recency.semantics import execute_b_bounded_labels


def expected_example_61_abstraction():
    """The abstract generating sequence of Example 6.1."""
    return [
        ("alpha", {"v1": -1, "v2": -2, "v3": -3}),
        ("beta", {"u": 1, "v1": -1, "v2": -2}),
        ("alpha", {"v1": -1, "v2": -2, "v3": -3}),
        ("gamma", {"u": 1}),
        ("delta", {"u1": 0, "u2": 1}),
        ("delta", {"u1": 1, "u2": 0}),
        ("delta", {"u1": 1, "u2": 1}),
        ("alpha", {"v1": -1, "v2": -2, "v3": -3}),
    ]


def test_symbolic_substitution_accessors():
    substitution = SymbolicSubstitution.of({"u": 1, "v1": -1})
    assert substitution["u"] == 1
    assert substitution.parameter_indices() == {"u": 1}
    assert substitution.fresh_indices() == {"v1": -1}
    assert substitution.max_parameter_index() == 1


def test_symbolic_substitutions_for_action_counts(example31):
    beta = example31.action("beta")
    assert len(symbolic_substitutions_for_action(beta, 2)) == 2
    assert len(symbolic_substitutions_for_action(beta, 3)) == 3
    delta = example31.action("delta")
    assert len(symbolic_substitutions_for_action(delta, 2)) == 4
    alpha = example31.action("alpha")
    assert len(symbolic_substitutions_for_action(alpha, 2)) == 1
    assert len(symbolic_substitutions_for_action(beta, 0)) == 0


def test_symbolic_alphabet_size(example31):
    # alpha:1, beta:2, gamma:2, delta:4 at b = 2.
    assert len(symbolic_alphabet(example31, 2)) == 9
    assert len(symbolic_alphabet(example31, 3)) == 1 + 3 + 3 + 9


def test_abstraction_matches_example_61(example31, figure1_labels):
    run = execute_b_bounded_labels(example31, figure1_labels, bound=2)
    word = abstract_run(run)
    expected = expected_example_61_abstraction()
    assert len(word) == len(expected)
    for label, (action, mapping) in zip(word, expected):
        assert label.action_name == action
        assert dict(label.substitution) == mapping


def test_abstract_substitution_rejects_out_of_window(example31, figure1_labels):
    from repro.errors import RecencyError

    run = execute_b_bounded_labels(example31, figure1_labels, bound=3)
    configuration = run.configurations()[1]
    beta = example31.action("beta")
    with pytest.raises(RecencyError):
        abstract_substitution(beta, configuration, {"u": "e1", "v1": "e4", "v2": "e5"}, bound=2)


def test_concretize_roundtrip_is_identity_on_canonical_runs(example31, figure1_labels):
    run = execute_b_bounded_labels(example31, figure1_labels, bound=2)
    assert is_canonical_run(run)
    word = abstract_run(run)
    rebuilt = concretize_word(example31, word, 2)
    assert rebuilt.instances() == run.instances()
    assert canonicalize_run(example31, run).labels() == run.labels()


def test_concretize_rejects_invalid_words(example31):
    alphabet = symbolic_alphabet(example31, 2)
    beta_label = next(label for label in alphabet if label.action_name == "beta")
    # beta cannot fire at the empty initial database.
    with pytest.raises(ConcretizationError) as error:
        concretize_word(example31, [beta_label], 2)
    assert error.value.failed_at == 0
    assert not is_valid_abstract_word(example31, [beta_label], 2)


def test_runs_with_same_abstraction_are_isomorphic(example31, figure1_labels):
    """Lemma E.1 on a concrete pair of runs differing by a domain permutation."""
    run = execute_b_bounded_labels(example31, figure1_labels, bound=2)
    permuted_labels = []
    renaming = {f"e{i}": f"e{i + 20}" for i in range(1, 12)}
    for action, sigma in figure1_labels:
        permuted_labels.append((action, {k: renaming.get(v, v) for k, v in sigma.items()}))
    permuted = execute_b_bounded_labels(example31, permuted_labels, bound=2)
    assert abstract_run(permuted) == abstract_run(run)
    assert runs_equivalent_modulo_permutation(run, permuted)
    isomorphism = run_isomorphism(run, permuted)
    assert isomorphism is not None and isomorphism["e1"] == "e21"
    assert not is_canonical_run(permuted)


def test_explorer_and_iteration_only_produce_valid_runs(example31):
    explorer = RecencyExplorer(example31, bound=2, limits=RecencyExplorationLimits(max_depth=3))
    result = explorer.explore()
    assert result.configuration_count > 1
    for run in iterate_b_bounded_runs(example31, bound=2, depth=3, max_runs=20):
        word = abstract_run(run)
        assert is_valid_abstract_word(example31, word, 2)
        assert is_canonical_run(run)
