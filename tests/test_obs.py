"""The telemetry layer: registry folding, null-path cost, traces, progress.

Covers the observability contracts the E20 bench gates at scale:

* folding worker snapshots into a parent registry is **order-insensitive**
  (counters add, gauges take maxima, histograms merge component-wise),
  across pickling and forked processes — the same associative idiom as
  ``SearchResult.merge``;
* the **null registry** path allocates nothing: every handle getter
  returns a shared no-op singleton, so uninstrumented explorations pay
  no per-event cost;
* instrumented engines **reconcile** — the folded counters agree exactly
  with the final ``SearchResult`` (states interned, edges, levels);
* JSONL **trace files** replay-parse cleanly and summarize; corrupt
  lines are reported by line number;
* the throttled **progress reporter** and the ``python -m repro.obs``
  summarizer CLI behave as documented.
"""

from __future__ import annotations

import io
import json
import pickle
import sys
from dataclasses import dataclass

import pytest

from repro.obs import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    ProgressReporter,
    Tracer,
    get_metrics,
    read_trace,
    resolve_metrics,
    set_global_registry,
    set_global_tracer,
    summarize_trace,
)
from repro.obs.cli import main as obs_main
from repro.runtime.pool import WorkerPool
from repro.runtime.scheduler import SweepScheduler
from repro.search import Engine, SearchLimits, ShardedEngine, process_backend_available
from repro.store.store import KIND_RESULT, ResultStore

needs_fork = pytest.mark.skipif(
    not process_backend_available(), reason="requires the fork start method"
)


# -- a tiny deterministic graph ------------------------------------------------


@dataclass(frozen=True)
class Node:
    key: int


@dataclass(frozen=True)
class Edge:
    source: Node
    target: Node


def lattice_successors(node: Node):
    if node.key >= 60:
        return []
    return [
        Edge(node, Node(node.key * 2 + 1)),
        Edge(node, Node(node.key * 2 + 2)),
        Edge(node, Node((node.key + 5) % 40)),
    ]


# -- registry basics -----------------------------------------------------------


def test_counters_gauges_histograms_roundtrip():
    registry = MetricsRegistry()
    registry.counter("events_total", kind="a").inc()
    registry.counter("events_total", kind="a").inc(4)
    registry.counter("events_total", kind="b").inc(2)
    registry.gauge("depth").high_water(3)
    registry.gauge("depth").high_water(1)  # high-water keeps the max
    registry.histogram("latency").observe(0.5)
    registry.histogram("latency").observe(1.5)
    assert registry.counter_value("events_total", kind="a") == 5
    assert registry.sum_counter("events_total") == 7
    assert registry.gauge_value("depth") == 3
    histogram = registry.histogram("latency")
    assert histogram.count == 2
    assert histogram.total == 2.0
    assert histogram.minimum == 0.5
    assert histogram.maximum == 1.5
    assert histogram.mean() == 1.0


def test_exposition_is_sorted_prometheus_style():
    registry = MetricsRegistry()
    registry.counter("b_total", node="1").inc(2)
    registry.counter("a_total").inc()
    registry.histogram("t").observe(2.0)
    lines = registry.exposition().splitlines()
    assert lines == sorted(lines)
    assert 'b_total{node="1"} 2' in lines
    assert "a_total 1" in lines
    assert "t_count 1" in lines
    assert "t_sum 2.0" in lines
    assert "t_min 2.0" in lines
    assert "t_max 2.0" in lines


def test_fold_is_order_insensitive_and_label_appending():
    def worker_snapshot(seed: int) -> dict:
        registry = MetricsRegistry()
        registry.counter("work_total").inc(seed)
        registry.gauge("peak").high_water(seed * 10)
        registry.histogram("t").observe(float(seed))
        return registry.snapshot()

    snapshots = [worker_snapshot(seed) for seed in (1, 2, 3)]
    forward, backward = MetricsRegistry(), MetricsRegistry()
    for index, snapshot in enumerate(snapshots):
        forward.fold(snapshot, node=str(index))
    for index, snapshot in reversed(list(enumerate(snapshots))):
        backward.fold(snapshot, node=str(index))
    assert forward.exposition() == backward.exposition()
    assert forward.sum_counter("work_total") == 6
    assert forward.counter_value("work_total", node="2") == 3
    assert forward.gauge_value("peak", node="2") == 30


def test_fold_survives_pickling_as_tcp_frames_do():
    worker = MetricsRegistry()
    worker.counter("c").inc(7)
    worker.histogram("h").observe(0.25)
    snapshot = pickle.loads(pickle.dumps(worker.snapshot()))
    parent = MetricsRegistry()
    parent.fold(snapshot, node="0")
    assert parent.counter_value("c", node="0") == 7
    assert parent.histogram("h", node="0").count == 1


@needs_fork
def test_fold_across_forked_workers_is_order_insensitive():
    import multiprocessing

    context = multiprocessing.get_context("fork")

    def produce(seed, pipe):
        registry = MetricsRegistry()
        registry.counter("forked_total").inc(seed)
        pipe.send(registry.snapshot())
        pipe.close()

    snapshots = []
    for seed in (2, 5):
        parent_end, child_end = context.Pipe()
        process = context.Process(target=produce, args=(seed, child_end))
        process.start()
        snapshots.append(parent_end.recv())
        process.join()
    one, other = MetricsRegistry(), MetricsRegistry()
    one.fold(snapshots[0], node="0")
    one.fold(snapshots[1], node="1")
    other.fold(snapshots[1], node="1")
    other.fold(snapshots[0], node="0")
    assert one.exposition() == other.exposition()
    assert one.sum_counter("forked_total") == 7


# -- the null path -------------------------------------------------------------


def test_null_registry_allocates_no_handles():
    assert NULL_REGISTRY.enabled is False
    assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b", any_label="x")
    assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
    assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
    timer = NULL_REGISTRY.histogram("a").time()
    with timer:
        pass
    assert NULL_REGISTRY.histogram("x").time() is timer
    assert NULL_REGISTRY.snapshot() == {}
    assert NULL_REGISTRY.exposition() == ""
    assert isinstance(NULL_REGISTRY, NullRegistry)


def test_resolution_defaults_to_null_and_honours_global():
    assert resolve_metrics(None) is NULL_REGISTRY
    assert get_metrics() is NULL_REGISTRY
    registry = MetricsRegistry()
    set_global_registry(registry)
    try:
        assert resolve_metrics(None) is registry
        explicit = MetricsRegistry()
        assert resolve_metrics(explicit) is explicit
    finally:
        set_global_registry(None)
    assert get_metrics() is NULL_REGISTRY


def test_uninstrumented_exploration_records_nothing():
    result = Engine(lattice_successors, limits=SearchLimits(max_depth=4)).explore(Node(0))
    assert result.state_count > 1
    assert get_metrics() is NULL_REGISTRY
    assert NULL_REGISTRY.snapshot() == {}


# -- engine reconciliation -----------------------------------------------------


def test_single_engine_counters_reconcile_with_result():
    registry = MetricsRegistry()
    engine = Engine(lattice_successors, limits=SearchLimits(max_depth=5), metrics=registry)
    result = engine.explore(Node(0))
    assert registry.counter_value("engine_states_total", kind="interned") == result.state_count
    duplicates = registry.counter_value("engine_states_total", kind="duplicate")
    assert duplicates == result.edge_count - (result.state_count - 1)
    assert registry.sum_counter("engine_edges_total") == result.edge_count
    assert registry.gauge_value("engine_depth_reached") == result.depth_reached
    assert registry.counter_value("engine_explorations_total", engine="single") == 1
    assert registry.histogram("engine_explore_seconds", engine="single").count == 1


@pytest.mark.parametrize("workers", [1, pytest.param(4, marks=needs_fork)])
def test_sharded_folded_counters_reconcile_with_result(workers):
    registry = MetricsRegistry()
    engine = ShardedEngine(
        lattice_successors,
        limits=SearchLimits(max_depth=6),
        shards=4,
        workers=workers,
        metrics=registry,
    )
    result = engine.explore(Node(0))
    assert registry.counter_value("engine_states_total", kind="interned") == result.state_count
    assert registry.sum_counter("engine_edges_total") == result.edge_count
    assert registry.counter_value("sharded_levels_total") == len(result.levels()) - 1
    assert registry.gauge_value("engine_depth_reached") == result.depth_reached
    assert registry.gauge_value("engine_frontier_states") == max(
        len(states) for states in result.levels().values()
    )


def test_distributed_node_counters_fold_and_reconcile():
    registry = MetricsRegistry()
    engine = ShardedEngine(
        lattice_successors,
        limits=SearchLimits(max_depth=5),
        shards=2,
        nodes=2,
        metrics=registry,
    )
    try:
        result = engine.explore(Node(0))
    finally:
        engine.close()
    # Every non-root state was interned on some node; edges match exactly.
    assert registry.sum_counter("node_states_total") == result.state_count - 1
    assert registry.sum_counter("node_edges_total") == result.edge_count
    # Per-node series stay distinguishable and the traffic counters moved.
    per_node = [
        registry.counter_value("node_states_total", node=str(node)) for node in (0, 1)
    ]
    assert sum(per_node) == result.state_count - 1
    assert registry.sum_counter("dist_frames_total", direction="sent") > 0
    assert registry.sum_counter("dist_bytes_total", direction="received") > 0
    assert registry.sum_counter("dist_leases_total") == 1


# -- runtime instrumentation ---------------------------------------------------


def _square(parameters: dict) -> dict:
    return {"square": parameters["n"] * parameters["n"]}


def test_scheduler_counts_memo_and_run_points(tmp_path):
    registry = MetricsRegistry()
    grid = [{"n": value} for value in range(4)]
    checkpoint = tmp_path / "sweep.jsonl"
    first = SweepScheduler(checkpoint=checkpoint, metrics=registry)
    first.run(grid, _square)
    assert registry.counter_value("sweep_points_total", source="run") == 4
    resumed = SweepScheduler(checkpoint=checkpoint, resume=True, metrics=registry)
    resumed.run(grid, _square)
    assert registry.counter_value("sweep_points_total", source="memo") == 4


def test_pool_records_task_outcomes_and_dispatch_latency():
    registry = MetricsRegistry()
    pool = WorkerPool(workers=2, metrics=registry)
    try:
        scheduler = SweepScheduler(parallel=2, pool=pool, metrics=registry)
        records = scheduler.run([{"n": value} for value in range(5)], _square)
    finally:
        pool.shutdown()
    assert [record.measurements["square"] for record in records] == [0, 1, 4, 9, 16]
    assert registry.counter_value("pool_tasks_total", outcome="ok") == 5
    assert registry.histogram("pool_dispatch_seconds").count == 5


# -- store instrumentation -----------------------------------------------------


def test_store_lookup_counters_and_session_stats(tmp_path):
    registry = MetricsRegistry()
    set_global_registry(registry)
    try:
        store = ResultStore(tmp_path / "store")
        assert store.load("00aa", kind=KIND_RESULT) is None  # miss
        store.save(
            "00aa", KIND_RESULT, {"rows": 1}, family="f", system_hash="s",
            schema_hash="h", base_hash="b", graph="dms", parameters="{}",
        )
        assert store.load("00aa") == {"rows": 1}  # hit (kind read from the row)
        blob = next((tmp_path / "store" / "blobs").glob("*.pkl"))
        blob.write_bytes(b"corrupt")
        assert store.load("00aa") is None  # self-repair counts as a miss
        session = store.stats()["session"]
        assert session["hits"] == {"result": 1}
        assert session["misses"] == {"result": 2}
        assert session["saves"] == {"result": 1}
        assert session["repairs"] == 1
        assert registry.counter_value("store_lookups_total", kind="result", outcome="hit") == 1
        assert registry.counter_value("store_lookups_total", kind="result", outcome="miss") == 2
        assert registry.counter_value("store_saves_total", kind="result") == 1
        assert registry.sum_counter("store_repairs_total") == 1
    finally:
        set_global_registry(None)


def test_store_session_counters_reset_across_pickling(tmp_path):
    store = ResultStore(tmp_path / "store")
    store.load("00aa", kind=KIND_RESULT)
    assert store.stats()["session"]["misses"] == {"result": 1}
    forked = pickle.loads(pickle.dumps(store))
    assert forked.stats()["session"]["misses"] == {}


# -- traces --------------------------------------------------------------------


def test_trace_spans_nest_and_replay_parse(tmp_path):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tracer:
        with tracer.span("explore", engine="single"):
            with tracer.span("expand", depth=0):
                pass
            tracer.event("point", index=0, source="run")
    records = read_trace(path)
    # Spans are written on exit: expand closes first, then the event
    # fires, then the enclosing explore span closes.
    assert [record["name"] for record in records] == ["expand", "point", "explore"]
    by_name = {record["name"]: record for record in records}
    assert by_name["expand"]["parent"] == by_name["explore"]["id"]
    assert by_name["point"]["parent"] == by_name["explore"]["id"]
    assert by_name["explore"]["seconds"] >= by_name["expand"]["seconds"]
    for record in records:
        assert record["pid"]
        json.dumps(record)  # every record is plain-JSON round-trippable
    summary = summarize_trace(records)
    assert summary["spans"]["explore"]["count"] == 1
    assert summary["events"]["point"] == 1


def test_corrupt_trace_line_is_reported_by_number(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"name": "ok", "attrs": {}}\nnot json\n')
    with pytest.raises(ValueError, match=r"trace\.jsonl:2"):
        read_trace(path)


def test_global_tracer_resolution_and_engine_spans(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(path)
    set_global_tracer(tracer)
    try:
        Engine(lattice_successors, limits=SearchLimits(max_depth=3)).explore(Node(0))
        ShardedEngine(
            lattice_successors, limits=SearchLimits(max_depth=3), shards=2
        ).explore(Node(0))
    finally:
        set_global_tracer(None)
        tracer.close()
    names = [record["name"] for record in read_trace(path)]
    assert names.count("explore") == 2
    assert "expand" in names  # the sharded per-level spans
    summary = summarize_trace(read_trace(path))
    engines = {record["attrs"]["engine"] for record in read_trace(path)
               if record["name"] == "explore"}
    assert engines == {"single", "sharded"}
    assert summary["spans"]["expand"]["count"] >= 3


def test_null_tracer_is_free_and_inert(tmp_path):
    span = NULL_TRACER.span("anything", depth=1)
    with span as inner:
        inner.note(extra=True)
    assert NULL_TRACER.span("other") is span


# -- progress ------------------------------------------------------------------


def test_progress_reporter_throttles_and_renders():
    clock = iter([0.0] + [0.1 * step for step in range(1, 400)])
    now = {"value": 0.0}

    def fake_clock() -> float:
        now["value"] = next(clock, now["value"] + 0.1)
        return now["value"]

    out = io.StringIO()
    reporter = ProgressReporter(interval=1.0, out=out, clock=fake_clock, check_every=1)
    for step in range(30):
        reporter.on_state(object(), depth=step % 5)
    assert 1 <= reporter.lines_emitted <= 4  # throttled to ~1/s of fake time
    line = reporter.final()
    assert "[progress]" in line
    assert "states=30" in line
    assert "depth=4" in line
    assert out.getvalue().count("[progress]") == reporter.lines_emitted


def test_progress_reporter_enriches_from_registry():
    registry = MetricsRegistry()
    registry.gauge("engine_frontier_states").high_water(12)
    registry.counter("store_lookups_total", kind="result", outcome="hit").inc(3)
    registry.counter("store_lookups_total", kind="result", outcome="miss").inc(1)
    out = io.StringIO()
    reporter = ProgressReporter(registry=registry, out=out, total_points=9)
    reporter.on_point(object())
    line = reporter.render()
    assert "points=1/9" in line
    assert "frontier=12" in line
    assert "store-hit=75%" in line


def test_progress_defaults_to_stderr(capsys):
    reporter = ProgressReporter()
    reporter.final()
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "[progress]" in captured.err


def test_stream_point_printer_writes_to_stderr(capsys):
    from repro.harness.reporting import point_printer
    from repro.runtime.scheduler import PointRecord

    printer = point_printer("E9")
    printer(PointRecord(index=0, parameters={"n": 1}, measurements={"square": 1}))
    captured = capsys.readouterr()
    assert captured.out == ""
    assert "[E9] point 0 (run)" in captured.err


# -- the summarizer CLI --------------------------------------------------------


def test_obs_cli_summarizes_trace_files(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tracer:
        with tracer.span("explore", engine="single"):
            tracer.event("point", index=0, source="run")
    assert obs_main([str(path)]) == 0
    printed = capsys.readouterr().out
    assert "explore" in printed
    assert "point=1" in printed
    assert obs_main([str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["trace"] == str(path)
    assert payload["spans"]["explore"]["count"] == 1


def test_obs_cli_reports_missing_file(tmp_path, capsys):
    assert obs_main([str(tmp_path / "absent.jsonl")]) == 1
    assert "absent.jsonl" in capsys.readouterr().err


def test_trace_records_carry_interpreter_compatible_json(tmp_path):
    # Replay-parse on the running interpreter (CI exercises 3.11 and
    # 3.12): everything json.loads accepts here round-trips bit-equal.
    path = tmp_path / "trace.jsonl"
    with Tracer(path) as tracer:
        with tracer.span("explore", strategy="bfs"):
            pass
    raw = path.read_text().splitlines()
    assert len(raw) == 1
    parsed = json.loads(raw[0])
    assert json.loads(json.dumps(parsed)) == parsed
    assert sys.version_info >= (3, 11)
