"""The one options surface shared by every exploration entry point.

:class:`ExplorationOptions` gathers the knobs that the explorers, the
reachability queries and the convergence sweeps used to re-declare
individually: limits, frontier strategy, edge retention, and the
sharding/worker/node execution shape.  The facade
(:func:`repro.api.run_reachability`, :class:`repro.api.Session`) and the
service layer pass one options value around instead of a dozen keyword
arguments; the legacy keyword surfaces build an options value and
delegate.

Execution-shape knobs (``shards``/``workers``/``shared_interning``/
``nodes``/``transport``) never change verdicts or witnesses — they are
excluded from store keys for exactly that reason — so two options values
differing only there describe the same query.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.dms.graph import ExplorationLimits
from repro.recency.explorer import RecencyExplorationLimits
from repro.search import RETAIN_PARENTS

__all__ = ["ExplorationOptions"]


@dataclass(frozen=True)
class ExplorationOptions:
    """Everything that shapes one exploration, as a frozen value object.

    Attributes:
        max_depth: maximum action applications along any explored path.
        max_configurations: stop after this many distinct configurations.
        max_steps: stop after this many generated edges.
        strategy: frontier strategy — ``"bfs"`` (default, minimal
            witnesses), ``"dfs"`` or ``"best-first"`` (needs ``heuristic``).
        heuristic: ``heuristic(configuration, depth) -> comparable`` for
            the best-first strategy; queries carrying one bypass the
            content-addressed store (callables have no content address).
        retention: edge-retention mode — ``"parents-only"`` (default for
            queries: one spanning-tree edge per configuration), ``"full"``
            or ``"counts-only"``.
        shards: hash partitions of the sharded engine.
        workers: successor-expansion worker processes per exploration.
        shared_interning: ship intern ids instead of pickled
            configurations over expansion pipes (``None`` = auto).
        nodes: node agents of the two-level distributed engine.
        transport: distributed transport (``None``/``"tcp"``/a
            :class:`repro.distributed.Coordinator`).
    """

    max_depth: int = 6
    max_configurations: int = 100_000
    max_steps: int = 500_000
    strategy: str = "bfs"
    heuristic: Callable | None = None
    retention: str = RETAIN_PARENTS
    shards: int = 1
    workers: int = 1
    shared_interning: bool | None = None
    nodes: int = 1
    transport: object = None

    @property
    def single_shard(self) -> bool:
        """Whether explorations run on the single-shard in-process engine.

        This is the only execution shape where a successor override can
        reach the engine, so it gates the store's subgraph capture and
        delta verification exactly as the legacy entry points did.
        """
        return self.shards == 1 and self.workers == 1 and self.nodes == 1

    def replace(self, **changes) -> "ExplorationOptions":
        """A copy with ``changes`` applied (the dataclass is frozen)."""
        return dataclasses.replace(self, **changes)

    def graph_limits(self) -> ExplorationLimits:
        """These limits as unbounded-semantics exploration limits."""
        return ExplorationLimits(
            max_depth=self.max_depth,
            max_configurations=self.max_configurations,
            max_steps=self.max_steps,
        )

    def recency_limits(self) -> RecencyExplorationLimits:
        """These limits as b-bounded-semantics exploration limits."""
        return RecencyExplorationLimits(
            max_depth=self.max_depth,
            max_configurations=self.max_configurations,
            max_steps=self.max_steps,
        )

    @classmethod
    def from_limits(
        cls, limits: ExplorationLimits | RecencyExplorationLimits | None, **knobs
    ) -> "ExplorationOptions":
        """Build options from a legacy limits object plus keyword knobs.

        This is the bridge the ``modelcheck.reachability`` shims use:
        both limits classes carry the same three fields, so the
        conversion is lossless.
        """
        if limits is None:
            return cls(**knobs)
        return cls(
            max_depth=limits.max_depth,
            max_configurations=limits.max_configurations,
            max_steps=limits.max_steps,
            **knobs,
        )
