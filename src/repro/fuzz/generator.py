"""Seeded fuzz-instance generation on top of the workload generator.

A *fuzz instance* bundles everything the differential oracle
(:mod:`repro.fuzz.oracle`) needs to decide one verification question two
independent ways: a random DMS, a recency bound, an exploration depth
and a reachability condition.  Instances are derived deterministically
from ``(tier, seed)`` — the sampled shape, the system and the condition
all come from one :class:`random.Random` stream seeded with a string
(CPython's string seeding is sha512-based, so it is independent of
``PYTHONHASHSEED``; ``tests/test_fuzz.py`` pins this across
subprocesses).

Tiers grade the corpus: ``smoke`` shapes are small enough that hundreds
of instances run in seconds (the CI differential sweep), ``stress``
shapes are larger and meant for scheduled or manual deep runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.dms.system import DMS
from repro.errors import ReproError
from repro.fol.syntax import Atom, Query, conjunction, exists
from repro.store.canonical import system_hash
from repro.workloads.generators import RandomDMSParameters, random_dms

__all__ = ["TIERS", "FuzzShape", "FuzzInstance", "sample_shape", "generate_instance"]


@dataclass(frozen=True)
class FuzzShape:
    """The concrete shape knobs of one fuzz instance.

    A superset of :class:`repro.workloads.generators.RandomDMSParameters`
    (schema arity, action counts, guard depth/connectives, constraint
    density) plus the verification knobs the oracle runs with (recency
    ``bound`` and exploration ``depth``).
    """

    relations: int = 2
    max_arity: int = 2
    propositions: int = 1
    actions: int = 3
    max_parameters: int = 2
    max_fresh: int = 2
    max_update_facts: int = 2
    negated_guard_probability: float = 0.3
    guard_depth: int = 1
    guard_or_probability: float = 0.3
    constraint_density: float = 0.2
    bound: int = 2
    depth: int = 3

    def dms_parameters(self) -> RandomDMSParameters:
        """The workload-generator view of this shape."""
        return RandomDMSParameters(
            relations=self.relations,
            max_arity=self.max_arity,
            propositions=self.propositions,
            actions=self.actions,
            max_parameters=self.max_parameters,
            max_fresh=self.max_fresh,
            max_update_facts=self.max_update_facts,
            negated_guard_probability=self.negated_guard_probability,
            guard_depth=self.guard_depth,
            guard_or_probability=self.guard_or_probability,
            constraint_density=self.constraint_density,
        )

    def as_json(self) -> dict:
        """The JSON form persisted into corpus entries."""
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

    @classmethod
    def from_json(cls, document: dict) -> "FuzzShape":
        """Rebuild a shape from :meth:`as_json` output."""
        return cls(**document)


@dataclass(frozen=True)
class _TierRanges:
    """Inclusive sampling ranges of one corpus tier."""

    relations: tuple[int, int]
    max_arity: tuple[int, int]
    propositions: tuple[int, int]
    actions: tuple[int, int]
    max_fresh: tuple[int, int]
    guard_depth: tuple[int, int]
    constraint_density: tuple[float, float]
    bound: tuple[int, int]
    depth: tuple[int, int]


#: The graded tiers: ``smoke`` must stay cheap enough for per-push CI
#: sweeps of hundreds of seeds; ``stress`` is for scheduled deep runs.
TIERS: dict[str, _TierRanges] = {
    "smoke": _TierRanges(
        relations=(1, 3),
        max_arity=(1, 2),
        propositions=(0, 2),
        actions=(1, 3),
        max_fresh=(1, 2),
        guard_depth=(0, 2),
        constraint_density=(0.0, 0.4),
        bound=(1, 2),
        depth=(2, 3),
    ),
    "stress": _TierRanges(
        relations=(2, 4),
        max_arity=(1, 3),
        propositions=(0, 2),
        actions=(2, 5),
        max_fresh=(1, 3),
        guard_depth=(1, 3),
        constraint_density=(0.0, 0.6),
        bound=(2, 3),
        depth=(3, 4),
    ),
}


@dataclass(frozen=True)
class FuzzInstance:
    """One differential-oracle input: a system plus its verification knobs.

    Attributes:
        system: the DMS under test.
        bound: the recency bound both paths decide at.
        depth: the exploration/run-enumeration depth both paths use.
        condition: the reachability condition (a boolean FOL(R) query).
        tier: the corpus tier the instance was sampled for.
        seed: the generator seed (``None`` for shrunk/derived instances).
        shape: the sampled shape knobs (``None`` for derived instances).
    """

    system: DMS
    bound: int
    depth: int
    condition: Query
    tier: str = "smoke"
    seed: int | None = None
    shape: FuzzShape | None = field(default=None, compare=False)

    @property
    def system_hash(self) -> str:
        """The canonical, ``PYTHONHASHSEED``-independent content hash."""
        return system_hash(self.system)

    def with_system(self, system: DMS) -> "FuzzInstance":
        """The same verification question over a modified system (shrinking)."""
        return replace(self, system=system, seed=None, shape=None)


def sample_shape(rng: random.Random, tier: str = "smoke") -> FuzzShape:
    """Sample concrete shape knobs within a tier's ranges."""
    if tier not in TIERS:
        raise ReproError(f"unknown fuzz tier {tier!r}; expected one of {sorted(TIERS)}")
    ranges = TIERS[tier]
    low, high = ranges.constraint_density
    return FuzzShape(
        relations=rng.randint(*ranges.relations),
        max_arity=rng.randint(*ranges.max_arity),
        propositions=rng.randint(*ranges.propositions),
        actions=rng.randint(*ranges.actions),
        max_fresh=rng.randint(*ranges.max_fresh),
        guard_depth=rng.randint(*ranges.guard_depth),
        guard_or_probability=round(rng.uniform(0.0, 0.5), 3),
        constraint_density=round(rng.uniform(low, high), 3),
        bound=rng.randint(*ranges.bound),
        depth=rng.randint(*ranges.depth),
    )


def _random_condition(rng: random.Random, system: DMS) -> Query:
    """A random boolean reachability condition over the system's schema.

    Mixes existential relation queries, bare propositions and small
    conjunctions, so the oracle exercises HOLDS, FAILS and UNKNOWN
    verdicts rather than one degenerate shape.
    """
    schema = system.schema
    choices = []
    if schema.non_nullary:
        choices.extend(["exists", "exists"])  # weighted: most conditions are data queries
    if schema.propositions:
        choices.append("proposition")
    if schema.non_nullary and schema.propositions:
        choices.append("conjunction")
    if not choices:
        return Atom(schema.relations[0].name, ())

    def existential() -> Query:
        relation = rng.choice(schema.non_nullary)
        variables = tuple(f"q{k}" for k in range(relation.arity))
        return exists(variables, Atom(relation.name, variables))

    kind = rng.choice(choices)
    if kind == "exists":
        return existential()
    if kind == "proposition":
        return Atom(rng.choice(schema.propositions).name, ())
    return conjunction(Atom(rng.choice(schema.propositions).name, ()), existential())


def generate_instance(
    seed: int, tier: str = "smoke", shape: FuzzShape | None = None
) -> FuzzInstance:
    """Deterministically generate the fuzz instance of ``(tier, seed)``.

    One string-seeded ``random.Random`` stream drives shape sampling,
    system generation and condition choice, so the same pair always
    produces the same system (byte-identical
    :func:`~repro.store.canonical.system_hash`) on every interpreter.
    An explicit ``shape`` skips the sampling and fixes the knobs.
    """
    rng = random.Random(f"repro-fuzz:{tier}:{seed}")
    chosen = shape or sample_shape(rng, tier)
    system_seed = rng.randrange(2**31)
    system = random_dms(system_seed, chosen.dms_parameters())
    system = system.with_actions(system.actions, name=f"fuzz-{tier}-{seed}")
    condition = _random_condition(rng, system)
    return FuzzInstance(
        system=system,
        bound=chosen.bound,
        depth=chosen.depth,
        condition=condition,
        tier=tier,
        seed=seed,
        shape=chosen,
    )
