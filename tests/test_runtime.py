"""Tests for the persistent parallel runtime (:mod:`repro.runtime`).

Covers the three runtime contracts:

* **Warm pools** — worker processes survive across explorations (same
  pids), contexts are shared under semantic keys, dead workers are
  health-checked, respawned, and their in-flight tasks re-run;
* **Scheduler determinism** — a sweep's rows are identical regardless
  of parallelism/completion order, points stream as they complete, and
  failing/timed-out points are retried before aborting the sweep;
* **Checkpoint/resume** — a sweep killed after N points and resumed
  from its JSONL checkpoint reproduces the exact row set of an
  uninterrupted run while recomputing only the missing points.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.errors import SchedulerError, WorkerPoolError
from repro.harness.experiments import experiment_e9_convergence
from repro.recency.explorer import RecencyExplorationLimits, RecencyExplorer
from repro.runtime import (
    PointRecord,
    SerialWorkerContext,
    SweepCheckpoint,
    SweepScheduler,
    WorkerPool,
    point_key,
)
from repro.search import Engine, SearchLimits, ShardedEngine, process_backend_available
from repro.workloads.sweeps import sweep

needs_fork = pytest.mark.skipif(
    not process_backend_available(), reason="fork start method unavailable"
)


# -- synthetic fixtures --------------------------------------------------------


@dataclass(frozen=True)
class Node:
    key: int


@dataclass(frozen=True)
class Edge:
    source: Node
    target: Node


DAG = {0: [1, 2, 3], 1: [4], 2: [5], 3: [4], 4: [6], 5: [6]}


def dag_successors(node: Node):
    return [Edge(node, Node(child)) for child in DAG.get(node.key, ())]


GRID = [{"n": n} for n in range(6)]


def square_measure(parameters: dict) -> dict:
    return {"square": parameters["n"] ** 2}


def slow_measure(parameters: dict) -> dict:
    time.sleep(0.05)
    return {"value": parameters["n"] * 10}


# -- warm worker pools ---------------------------------------------------------


@needs_fork
def test_pooled_engine_reuses_warm_workers_across_explorations():
    with WorkerPool(workers=2) as pool:
        engine = ShardedEngine(
            dag_successors,
            limits=SearchLimits(max_depth=5),
            shards=2,
            workers=2,
            pool=pool,
            pool_key="dag",
        )
        assert engine.backend_name == "pooled"
        first = engine.explore(Node(0))
        pids = pool.worker_pids("dag")
        assert len(pids) == 2
        second = engine.explore(Node(0))
        assert pool.worker_pids("dag") == pids  # warm: the same workers served both
        assert pool.health_check("dag")
        reference = Engine(dag_successors, limits=SearchLimits(max_depth=5)).explore(Node(0))
        for merged in (first, second):
            assert set(merged.states()) == set(reference.states())
            assert merged.edge_count == reference.edge_count
            assert merged.truncated == reference.truncated


@needs_fork
def test_pool_contexts_shared_across_engines_by_semantic_key():
    with WorkerPool(workers=2) as pool:
        first = ShardedEngine(
            dag_successors, shards=2, workers=2, pool=pool, pool_key=("dag", "shared")
        )
        second = ShardedEngine(
            dag_successors, shards=4, workers=2, pool=pool, pool_key=("dag", "shared")
        )
        first.explore(Node(0))
        pids = pool.worker_pids(("dag", "shared"))
        second.explore(Node(0))
        assert pool.worker_pids(("dag", "shared")) == pids
        assert pool.keys() == (("dag", "shared"),)


@needs_fork
def test_pool_respawns_crashed_worker_and_recovers_results():
    def slowish(parameters: dict) -> dict:
        time.sleep(0.1)
        return {"value": parameters["n"]}

    with WorkerPool(workers=2) as pool:
        context = pool.context("crashy", slowish, workers=2)
        for n in range(8):
            context.submit({"n": n})
        victims = context.pids()
        time.sleep(0.03)
        os.kill(victims[0], signal.SIGKILL)  # mid-flight crash
        outcomes = {}
        for task_id, value, error in context.events():
            assert error is None, error
            outcomes[task_id] = value
        # Every task completed despite the crash (the dead worker's task was re-run) ...
        assert outcomes == {n: {"value": n} for n in range(8)}
        # ... and the context healed itself with a fresh worker.
        assert pool.health_check("crashy")
        assert context.pids() != victims


@needs_fork
def test_pooled_exploration_survives_worker_killed_between_explorations():
    system_successors = dag_successors
    with WorkerPool(workers=2) as pool:
        engine = ShardedEngine(
            system_successors, limits=SearchLimits(max_depth=5), shards=2, workers=2,
            pool=pool, pool_key="kill-between",
        )
        reference = engine.explore(Node(0))
        os.kill(pool.worker_pids("kill-between")[0], signal.SIGKILL)
        for _ in range(200):  # SIGKILL delivery is asynchronous
            if not pool.health_check("kill-between"):
                break
            time.sleep(0.01)
        assert not pool.health_check("kill-between")
        again = engine.explore(Node(0))  # expand() health-checks and respawns lazily
        assert pool.health_check("kill-between")
        assert set(again.states()) == set(reference.states())
        assert again.edge_count == reference.edge_count


def test_pool_serial_fallback_is_deterministic_and_pid_free():
    with WorkerPool(workers=2, use_processes=False) as pool:
        engine = ShardedEngine(
            dag_successors, limits=SearchLimits(max_depth=5), shards=3, workers=2,
            pool=pool, pool_key="serial",
        )
        assert engine.backend_name == "pooled-serial"
        merged = engine.explore(Node(0))
        reference = Engine(dag_successors, limits=SearchLimits(max_depth=5)).explore(Node(0))
        assert set(merged.states()) == set(reference.states())
        assert pool.worker_pids("serial") == (os.getpid(),)


@needs_fork
def test_failed_expansion_does_not_contaminate_next_exploration():
    # An expansion whose successor function raises must fail cleanly AND
    # leave the warm context reusable: the next exploration through the
    # same context gets correct, uncontaminated results.
    poison = Node(5)

    def sometimes_failing(node: Node):
        if node == poison:
            raise ValueError("poisoned state")
        return dag_successors(node)

    with WorkerPool(workers=2) as pool:
        engine = ShardedEngine(
            sometimes_failing, limits=SearchLimits(max_depth=5), shards=2, workers=2,
            pool=pool, pool_key="poisoned",
        )
        with pytest.raises(WorkerPoolError, match="poisoned state"):
            engine.explore(Node(0))
        # Same warm context, clean run on a graph that avoids the poison.
        healthy = engine.explore(Node(1))
        reference = Engine(dag_successors, limits=SearchLimits(max_depth=5)).explore(Node(1))
        assert set(healthy.states()) == set(reference.states())
        assert healthy.edge_count == reference.edge_count


@needs_fork
def test_scheduler_abandoned_context_does_not_break_next_sweep():
    # A sweep aborted by SchedulerError leaves its context mid-run; a
    # second sweep reusing the same pool context must still produce a
    # complete, correct row set.
    def touchy(parameters: dict) -> dict:
        if parameters["n"] < 0:
            raise ValueError("bad point")
        time.sleep(0.02)
        return {"value": parameters["n"]}

    with WorkerPool(workers=2) as pool:
        first = SweepScheduler(parallel=2, pool=pool, context_key="touchy")
        with pytest.raises(SchedulerError):
            first.run([{"n": 1}, {"n": -1}, {"n": 2}, {"n": 3}], touchy)
        second = SweepScheduler(parallel=2, pool=pool, context_key="touchy")
        records = second.run([{"n": n} for n in range(5)], touchy)
        assert [record.as_row() for record in records] == [
            {"n": n, "value": n} for n in range(5)
        ]


@needs_fork
def test_serial_context_upgrades_to_processes_on_demand():
    from repro.runtime import ProcessWorkerContext

    with WorkerPool() as pool:
        serial = pool.context("upgrade", square_measure, workers=1)
        assert isinstance(serial, SerialWorkerContext)
        upgraded = pool.context("upgrade", square_measure, workers=2)
        assert isinstance(upgraded, ProcessWorkerContext)
        assert len(upgraded.pids()) == 2
        upgraded.submit({"n": 3})
        assert next(iter(upgraded.events()))[1] == {"square": 9}


@needs_fork
def test_auto_keyed_backend_releases_context_on_engine_close():
    # Without a semantic pool_key the context is tied to the engine's
    # successor closure; closing the engine must tear its workers down
    # instead of accumulating a warm context nothing can address again.
    with WorkerPool(workers=2) as pool:
        engine = ShardedEngine(
            dag_successors, limits=SearchLimits(max_depth=5), shards=2, workers=2, pool=pool
        )
        engine.explore(Node(0))
        assert len(pool.keys()) == 1
        engine.close()
        assert pool.keys() == ()


def test_convergence_checkpoint_keys_distinguish_queries(tmp_path):
    from repro.dms.builder import DMSBuilder
    from repro.fol.parser import parse_query
    from repro.modelcheck.convergence import reachability_bound_sweep

    builder = DMSBuilder("memo-keys")
    builder.relations(("R", 1), ("Q", 1), ("p", 0))
    builder.initially("p")
    builder.action("produce", fresh=("x",), guard="p", add=[("R", "x")])
    builder.action("promote", parameters=("x",), guard="R(x)", add=[("Q", "x")], delete=[("R", "x")])
    system = builder.build()
    checkpoint = tmp_path / "bounds.jsonl"
    first = reachability_bound_sweep(
        system, parse_query("exists u. Q(u)"), bounds=(1, 2), max_depth=3,
        checkpoint=checkpoint,
    )
    # Same file, different condition: the memo must NOT serve the old rows.
    second = reachability_bound_sweep(
        system, parse_query("exists u. R(u)"), bounds=(1, 2), max_depth=3,
        checkpoint=checkpoint, resume=True,
    )
    memo = SweepCheckpoint(checkpoint).load()
    assert len(memo) == 4  # two conditions x two bounds, distinct content keys
    # And re-running the first condition with resume serves it unchanged.
    again = reachability_bound_sweep(
        system, parse_query("exists u. Q(u)"), bounds=(1, 2), max_depth=3,
        checkpoint=checkpoint, resume=True,
    )
    assert again == first
    assert second != first  # different condition, genuinely different rows


@needs_fork
def test_auto_keyed_contexts_are_lease_counted_across_engines():
    # Two engines over the same successors closure (no pool_key) share
    # one auto-keyed context; closing one must not tear down the context
    # the other still uses — only the last close does.
    with WorkerPool(workers=2) as pool:
        first = ShardedEngine(
            dag_successors, limits=SearchLimits(max_depth=5), shards=2, workers=2, pool=pool
        )
        second = ShardedEngine(
            dag_successors, limits=SearchLimits(max_depth=5), shards=2, workers=2, pool=pool
        )
        reference = first.explore(Node(0))
        second.explore(Node(0))
        assert len(pool.keys()) == 1  # one shared context for the shared closure
        first.close()
        still_alive = second.explore(Node(0))  # the shared context must survive
        assert set(still_alive.states()) == set(reference.states())
        second.close()
        assert pool.keys() == ()  # last lease dropped -> context torn down
        # close() is idempotent and the engine can re-acquire afterwards.
        second.close()
        reacquired = second.explore(Node(0))
        assert set(reacquired.states()) == set(reference.states())


@needs_fork
def test_scheduler_releases_auto_contexts_on_shared_pools():
    # Sweeps keyed by measure identity must not leak warm worker groups
    # into a shared pool; semantic context_keys stay warm deliberately.
    with WorkerPool(workers=2) as pool:
        SweepScheduler(parallel=2, pool=pool).run(GRID, slow_measure)
        assert pool.keys() == ()
        SweepScheduler(parallel=2, pool=pool, context_key="keep-warm").run(GRID, slow_measure)
        assert pool.keys() == ("keep-warm",)


def test_pool_rejects_unknown_keys_and_use_after_shutdown():
    pool = WorkerPool(workers=1)
    with pytest.raises(WorkerPoolError):
        pool.worker_pids("never-registered")
    pool.shutdown()
    with pytest.raises(WorkerPoolError):
        pool.context("late", square_measure)


# -- scheduler determinism and streaming ---------------------------------------


def test_scheduler_rows_are_identical_regardless_of_parallelism():
    sequential = SweepScheduler(parallel=1).run(GRID, square_measure)
    rows = [record.as_row() for record in sequential]
    assert rows == [{"n": n, "square": n * n} for n in range(6)]
    if process_backend_available():
        parallel = SweepScheduler(parallel=3).run(GRID, slow_measure)
        again = SweepScheduler(parallel=1).run(GRID, slow_measure)
        assert [record.as_row() for record in parallel] == [
            record.as_row() for record in again
        ]
        assert [record.index for record in parallel] == list(range(6))


@needs_fork
def test_scheduler_streams_points_in_completion_order():
    seen: list[PointRecord] = []
    records = SweepScheduler(parallel=3).run(GRID, slow_measure, on_point=seen.append)
    assert sorted(record.index for record in seen) == list(range(6))
    assert [record.index for record in records] == list(range(6))  # run() re-sorts


def test_sweep_function_routes_through_scheduler_with_on_point():
    seen = []
    points = sweep(GRID, square_measure, on_point=seen.append)
    assert [point.as_row() for point in points] == [{"n": n, "square": n * n} for n in range(6)]
    assert len(seen) == 6 and all(isinstance(record, PointRecord) for record in seen)


def test_scheduler_retries_failing_point_then_succeeds(tmp_path):
    flag = tmp_path / "failed-once"

    def flaky(parameters: dict) -> dict:
        if parameters["n"] == 2 and not flag.exists():
            flag.write_text("x")
            raise ValueError("transient")
        return {"value": parameters["n"]}

    records = SweepScheduler(parallel=1, retries=1).run([{"n": n} for n in range(4)], flaky)
    assert [record.as_row() for record in records] == [
        {"n": n, "value": n} for n in range(4)
    ]
    assert [record.attempts for record in records] == [1, 1, 2, 1]


def test_scheduler_raises_after_retries_exhausted():
    def always_failing(parameters: dict) -> dict:
        raise ValueError("permanent")

    with pytest.raises(SchedulerError, match="permanent"):
        SweepScheduler(parallel=1, retries=1).run([{"n": 0}], always_failing)


@needs_fork
def test_scheduler_timeout_kills_worker_and_retries(tmp_path):
    flag = tmp_path / "timed-out-once"

    def sticky(parameters: dict) -> dict:
        if parameters["n"] == 1 and not flag.exists():
            flag.write_text("x")
            time.sleep(30)
        return {"value": parameters["n"]}

    started = time.monotonic()
    records = SweepScheduler(parallel=2, timeout=0.8, retries=1).run(
        [{"n": n} for n in range(3)], sticky
    )
    assert time.monotonic() - started < 15
    assert [record.as_row() for record in records] == [{"n": n, "value": n} for n in range(3)]


def test_scheduler_rejects_bad_configuration():
    with pytest.raises(SchedulerError):
        SweepScheduler(parallel=0)
    with pytest.raises(SchedulerError):
        SweepScheduler(retries=-1)
    with pytest.raises(SchedulerError):
        SweepScheduler(resume=True)  # resume needs a checkpoint


# -- checkpoint / resume -------------------------------------------------------


def test_checkpoint_resume_round_trip_after_interrupt(tmp_path):
    checkpoint_path = tmp_path / "sweep.jsonl"
    full = SweepScheduler(parallel=1, checkpoint=checkpoint_path).run(GRID, square_measure)
    # One record per point; records are separated by blank isolator lines.
    lines = [line for line in checkpoint_path.read_text().splitlines() if line.strip()]
    assert len(lines) == len(GRID)

    # Simulate a sweep killed after 3 completed points: keep 3 records
    # plus a torn partial line from the in-flight write.
    checkpoint_path.write_text("\n".join(lines[:3]) + '\n{"key": "torn')

    executed = []

    def counting_measure(parameters: dict) -> dict:
        executed.append(parameters["n"])
        return square_measure(parameters)

    resumed = SweepScheduler(
        parallel=1, checkpoint=checkpoint_path, resume=True
    ).run(GRID, counting_measure)
    assert [record.as_row() for record in resumed] == [record.as_row() for record in full]
    assert len(executed) == len(GRID) - 3  # only the missing points were recomputed
    assert sum(1 for record in resumed if record.cached) == 3
    # The checkpoint now holds the full row set again and resumes clean.
    rerun = SweepScheduler(parallel=1, checkpoint=checkpoint_path, resume=True).run(
        GRID, counting_measure
    )
    assert all(record.cached for record in rerun)
    assert len(executed) == len(GRID) - 3


def test_checkpoint_is_content_keyed_not_position_keyed(tmp_path):
    checkpoint = SweepCheckpoint(tmp_path / "memo.jsonl")
    SweepScheduler(checkpoint=checkpoint).run(GRID[:4], square_measure)
    # A reordered, extended grid still reuses every computed point.
    reordered = list(reversed(GRID))
    records = SweepScheduler(checkpoint=checkpoint, resume=True).run(reordered, square_measure)
    cached = {record.parameters["n"] for record in records if record.cached}
    assert cached == {0, 1, 2, 3}
    assert point_key({"b": 1, "a": 2}) == point_key({"a": 2, "b": 1})  # canonical


def test_checkpoint_without_resume_starts_fresh(tmp_path):
    checkpoint_path = tmp_path / "fresh.jsonl"
    SweepScheduler(checkpoint=checkpoint_path).run(GRID, square_measure)
    records = SweepScheduler(checkpoint=checkpoint_path).run(GRID[:2], square_measure)
    assert not any(record.cached for record in records)
    remaining = [line for line in checkpoint_path.read_text().splitlines() if line.strip()]
    assert len(remaining) == 2  # old memo cleared


def test_checkpoint_load_skips_corrupt_lines(tmp_path):
    path = tmp_path / "memo.jsonl"
    checkpoint = SweepCheckpoint(path)
    checkpoint.record({"n": 1}, {"square": 1})
    with path.open("a") as handle:
        handle.write("not json\n")
        handle.write(json.dumps({"key": 7, "measurements": {}}) + "\n")  # bad key type
    memo = checkpoint.load()
    assert memo == {point_key({"n": 1}): {"square": 1}}


def test_point_key_rejects_noncanonical_values_instead_of_colliding(tmp_path):
    # Regression: point_key used ``default=str``, so assignments that
    # differ as Python values but share a str() rendering — e.g.
    # pathlib.Path("runs/x") versus the string "runs/x" — produced the
    # same key, and a resumed sweep served one point's measurements for
    # the other.  Non-JSON values must be rejected, not stringified.
    import pathlib

    with pytest.raises(TypeError):
        point_key({"out": pathlib.Path("runs/x")})
    assert "runs/x" in point_key({"out": "runs/x"})  # the honest form still works
    with pytest.raises(TypeError):
        point_key({"bounds": {1, 2}})  # sets stringify unstably
    with pytest.raises(TypeError):
        point_key({"measure": square_measure})  # callables have no content key
    with pytest.raises(TypeError):
        point_key({1: "non-string key"})
    # Canonicalisation keeps JSON-equal shapes together ...
    assert point_key({"grid": (1, 2)}) == point_key({"grid": [1, 2]})
    assert point_key({"a": 1, "b": 2}) == point_key({"b": 2, "a": 1})
    # ... and JSON-distinct scalars apart.
    assert point_key({"v": True}) != point_key({"v": 1})
    assert point_key({"v": 2}) != point_key({"v": 2.0})
    # record() enforces the same domain instead of writing a bad memo.
    with pytest.raises(TypeError):
        SweepCheckpoint(tmp_path / "memo.jsonl").record(
            {"out": pathlib.Path("runs/x")}, {"value": 1}
        )


def _hammer_checkpoint(path, writer: int, count: int) -> None:
    checkpoint = SweepCheckpoint(path)
    # Records far larger than the default text-IO buffer: the pre-fix
    # buffered write flushed them in several chunks, so concurrent
    # writers spliced fragments into each other's lines.
    payload = f"w{writer}-" * 4096
    for index in range(count):
        checkpoint.record(
            {"writer": writer, "index": index},
            {"writer": writer, "index": index, "payload": payload},
        )


@needs_fork
def test_concurrent_record_never_tears_or_interleaves_lines(tmp_path):
    # Regression: record() seek-and-inspected the tail then wrote via a
    # buffered read/write descriptor.  Under concurrent writers (a
    # shared memo across sweeps) both steps race: a buffered record
    # flushes in several raw writes, and another writer's line can land
    # between them.  The guarantee that closes the race is structural —
    # each record is ONE write() on an unbuffered append-only
    # descriptor, which the kernel serialises whole — so first pin the
    # structure, then hammer the behaviour from real processes.
    import multiprocessing
    from pathlib import Path

    path = tmp_path / "memo.jsonl"
    probe = tmp_path / "probe.jsonl"
    opens: list[tuple[str, int]] = []
    writes: list[bytes] = []
    real_open = Path.open

    class SpyHandle:
        def __init__(self, handle):
            self._handle = handle

        def __enter__(self):
            self._handle.__enter__()
            return self

        def __exit__(self, *exc_info):
            return self._handle.__exit__(*exc_info)

        def write(self, data):
            writes.append(bytes(data))
            return self._handle.write(data)

        def __getattr__(self, name):
            return getattr(self._handle, name)

    def spying_open(self, mode="r", buffering=-1, **kwargs):
        handle = real_open(self, mode, buffering, **kwargs)
        if self == probe and "b" in mode:
            opens.append((mode, buffering))
            return SpyHandle(handle)
        return handle

    with pytest.MonkeyPatch.context() as patcher:
        patcher.setattr(Path, "open", spying_open)
        SweepCheckpoint(probe).record({"n": 0}, {"payload": "x" * 65536})
    assert opens == [("ab", 0)]  # append-only, unbuffered — never read/write
    assert len(writes) == 1  # the whole record lands in one kernel append
    assert writes[0].endswith(b"\n") and b'"payload"' in writes[0]

    writers, per_writer = 4, 20
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(target=_hammer_checkpoint, args=(path, writer, per_writer))
        for writer in range(writers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
        assert process.exitcode == 0
    memo = SweepCheckpoint(path).load()
    assert len(memo) == writers * per_writer  # no record lost or corrupted
    for writer in range(writers):
        for index in range(per_writer):
            measurements = memo[point_key({"writer": writer, "index": index})]
            assert measurements["writer"] == writer
            assert measurements["index"] == index
            assert measurements["payload"] == f"w{writer}-" * 4096


# -- the runtime through the experiment harness (E9) ---------------------------


def test_e9_rows_identical_sequential_vs_parallel():
    sequential = experiment_e9_convergence(max_depth=4)
    if process_backend_available():
        parallel = experiment_e9_convergence(max_depth=4, parallel=4)
        assert parallel == sequential


@needs_fork
def test_nested_parallelism_degrades_to_serial_expansion_in_workers():
    # A sweep point running on a daemonic scheduler worker cannot spawn
    # its own expansion processes; the engine must detect that and fall
    # back to serial expansion with identical results (the outer grid
    # level already provides the parallelism).
    def nested_measure(parameters: dict) -> dict:
        explorer = RecencyExplorer(
            tiny_dms(), 2, RecencyExplorationLimits(max_depth=3),
            shards=2, workers=2,  # would fork if allowed; must degrade inside a worker
        )
        result = explorer.explore()
        return {
            "backend": explorer.backend_name,
            "configurations": result.configuration_count,
            "edges": result.edge_count,
        }

    inline = nested_measure({})
    assert inline["backend"] == "process"  # the main process may fork
    records = SweepScheduler(parallel=2).run([{"n": 0}, {"n": 1}], nested_measure)
    for record in records:
        assert record.measurements["backend"] == "serial"  # degraded, not crashed
        assert record.measurements["configurations"] == inline["configurations"]
        assert record.measurements["edges"] == inline["edges"]


def tiny_dms():
    from repro.dms.builder import DMSBuilder

    builder = DMSBuilder("nested-runtime")
    builder.relations(("R", 1), ("p", 0))
    builder.initially("p")
    builder.action("make", fresh=("x",), guard="p", add=[("R", "x")])
    builder.action("stop", guard="p", delete=[("p",)])
    return builder.build()


def test_e9_checkpoint_resume_reproduces_exact_row_set(tmp_path):
    checkpoint_path = tmp_path / "e9.jsonl"
    uninterrupted = experiment_e9_convergence(max_depth=4, checkpoint=checkpoint_path)
    memo = SweepCheckpoint(checkpoint_path).load()
    assert len(memo) == 7  # 4 reachability bounds + 3 state-space bounds, one file
    lines = [line for line in checkpoint_path.read_text().splitlines() if line.strip()]
    checkpoint_path.write_text("\n".join(lines[:4]) + "\n")  # "killed" after 4 points
    resumed = experiment_e9_convergence(max_depth=4, checkpoint=checkpoint_path, resume=True)
    assert resumed == uninterrupted
    assert len(SweepCheckpoint(checkpoint_path).load()) == 7  # memo complete again


def test_cli_streams_checkpoints_and_rejects_unsupported_flags(tmp_path, capsys):
    from repro.harness.cli import main

    checkpoint = tmp_path / "cli-e9.jsonl"
    assert main(["E9", "--parallel", "2", "--checkpoint", str(checkpoint), "--stream"]) == 0
    captured = capsys.readouterr()
    # Per-point progress lines go to stderr; stdout stays pipeline-clean.
    assert "(streaming)" in captured.out and "[E9] point" in captured.err
    assert checkpoint.exists()
    assert main(["E9", "--checkpoint", str(checkpoint), "--resume"]) == 0
    # Flags an experiment would silently ignore are rejected instead.
    with pytest.raises(SystemExit):
        main(["E14", "--checkpoint", str(checkpoint)])
    with pytest.raises(SystemExit):
        main(["E1", "--parallel", "4"])
    with pytest.raises(SystemExit):
        main(["E9", "--quick"])
    with pytest.raises(SystemExit):
        main(["E9", "--resume"])  # resume needs a checkpoint to resume from
    capsys.readouterr()


def test_stream_experiment_returns_the_rows_it_prints(capsys):
    from repro.harness.reporting import stream_experiment

    rows = stream_experiment("E9", "convergence", experiment_e9_convergence, max_depth=3)
    assert rows == experiment_e9_convergence(max_depth=3)
    captured = capsys.readouterr()
    # Per-point progress lines go to stderr; stdout carries the header only.
    assert captured.err.count("[E9] point") == len(rows)


# -- explorer integration ------------------------------------------------------


@needs_fork
def test_recency_explorer_with_pool_matches_plain_exploration():
    from repro.casestudies.booking import booking_agency_system

    system = booking_agency_system()
    limits = RecencyExplorationLimits(max_depth=3)
    reference = RecencyExplorer(system, 2, limits).explore()
    with WorkerPool(workers=2) as pool:
        with RecencyExplorer(system, 2, limits, shards=2, workers=2, pool=pool) as explorer:
            assert explorer.backend_name == "pooled"
            first = explorer.explore()
            second = explorer.explore()
        key = ("recency", id(system), 2)
        assert key in pool.keys()
        assert pool.health_check(key)
    assert first.configurations == reference.configurations
    assert first.edge_count == reference.edge_count
    assert second.configurations == reference.configurations


def test_serial_worker_context_mirrors_the_protocol():
    context = SerialWorkerContext("serial", square_measure)
    identifiers = [context.submit({"n": n}) for n in range(3)]
    outcomes = list(context.events())
    assert [task_id for task_id, _, _ in outcomes] == identifiers
    assert [value for _, value, _ in outcomes] == [{"square": 0}, {"square": 1}, {"square": 4}]
    assert context.healthy() and context.ensure_alive() == []

    def broken(parameters: dict) -> dict:
        raise RuntimeError("inline failure")

    failing = SerialWorkerContext("broken", broken)
    failing.submit({})
    ((_, value, error),) = list(failing.events())
    assert value is None and "inline failure" in error
