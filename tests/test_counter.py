"""Tests for counter machines and the Appendix D reductions."""

import pytest

from repro.counter.machine import CounterMachine, control_state_reachable
from repro.counter.reductions import binary_encoding, state_proposition, unary_encoding
from repro.errors import CounterMachineError
from repro.fol.normalize import is_union_of_conjunctive_queries
from repro.modelcheck.reachability import proposition_reachable_bounded


@pytest.fixture
def simple_machine():
    return CounterMachine.create(
        states=["q0", "q1", "q2", "qf"],
        initial_state="q0",
        counter_count=2,
        instructions=[
            ("q0", "inc", 1, "q1"),
            ("q1", "inc", 1, "q2"),
            ("q2", "dec", 1, "q1"),
            ("q1", "ifz", 2, "qf"),
        ],
        name="simple",
    )


def test_machine_validation():
    with pytest.raises(CounterMachineError):
        CounterMachine.create(["q0"], "q1", 2, [])
    with pytest.raises(CounterMachineError):
        CounterMachine.create(["q0"], "q0", 2, [("q0", "inc", 3, "q0")])
    with pytest.raises(CounterMachineError):
        CounterMachine.create(["q0"], "q0", 0, [])


def test_machine_semantics(simple_machine):
    initial = simple_machine.initial_configuration()
    assert initial.counters == (0, 0)
    successors = simple_machine.successors(initial)
    assert len(successors) == 1 and successors[0].value(1) == 1
    # dec blocks on zero, ifz blocks on non-zero.
    trace = simple_machine.run_trace([0])
    after_inc = trace[-1]
    options = {succ.state for succ in simple_machine.successors(after_inc)}
    assert options == {"q2", "qf"}


def test_control_state_reachability(simple_machine):
    assert control_state_reachable(simple_machine, "qf")
    unreachable = CounterMachine.create(
        states=["q0", "q1", "qf"],
        initial_state="q0",
        counter_count=2,
        instructions=[("q0", "inc", 1, "q0"), ("q0", "dec", 2, "q1"), ("q1", "inc", 2, "qf")],
    )
    assert not control_state_reachable(unreachable, "qf", max_steps=20)
    with pytest.raises(CounterMachineError):
        control_state_reachable(simple_machine, "nope")


def test_unary_encoding_structure(simple_machine):
    system = unary_encoding(simple_machine)
    assert system.schema.arity_of("C1") == 1
    assert state_proposition("qf") in system.schema.names
    assert len(system.actions) == len(simple_machine.instructions)
    assert system.initial_instance.holds_proposition(state_proposition("q0"))


def test_binary_encoding_structure_and_ucq_guards(simple_machine):
    system = binary_encoding(simple_machine)
    assert system.schema.arity_of("Succ") == 2
    assert len(system.actions) == len(simple_machine.instructions) + 1
    for action in system.actions:
        assert is_union_of_conjunctive_queries(action.guard), action.name


def test_unary_encoding_reachability_agrees(simple_machine):
    system = unary_encoding(simple_machine)
    result = proposition_reachable_bounded(
        system, state_proposition("qf"), bound=2, max_depth=6
    )
    assert result.found == control_state_reachable(simple_machine, "qf")


def test_binary_encoding_reachability_agrees(simple_machine):
    system = binary_encoding(simple_machine)
    result = proposition_reachable_bounded(
        system, state_proposition("qf"), bound=2, max_depth=8
    )
    assert result.found == control_state_reachable(simple_machine, "qf")


def test_encodings_reject_non_two_counter_machines():
    machine = CounterMachine.create(["q0"], "q0", 3, [])
    with pytest.raises(CounterMachineError):
        unary_encoding(machine)
    with pytest.raises(CounterMachineError):
        binary_encoding(machine)


def test_counter_values_tracked_by_relation_sizes(simple_machine):
    """In the unary encoding, |C_i| equals the counter value along a run."""
    from repro.dms.semantics import enumerate_successors, initial_configuration

    system = unary_encoding(simple_machine)
    configuration = initial_configuration(system)
    # Apply the increment twice via canonical successor enumeration.
    for _ in range(2):
        steps = [
            step
            for step in enumerate_successors(system, configuration)
            if "inc" in step.action.name
        ]
        assert steps
        configuration = steps[0].target
    assert len(configuration.instance.relation_rows("C1")) == 2
