"""Convergence of recency-bounded analysis in the bound ``b`` (paper, Section 5).

Recency boundedness is an *exhaustive* under-approximation: every finite
behaviour is captured once ``b`` is large enough, and safety verdicts
converge to the exact ones in the limit (Example 5.2 derives a concrete
``k_mb`` for the booking case study).  The helpers in this module sweep
the bound and report how verdicts and the amount of explored behaviour
evolve, which is what experiment E9 measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dms.system import DMS
from repro.fol.syntax import Query
from repro.modelcheck.reachability import query_reachable, query_reachable_bounded
from repro.modelcheck.result import Verdict
from repro.recency.explorer import RecencyExplorationLimits, RecencyExplorer
from repro.search import RETAIN_COUNTS, RETAIN_PARENTS

__all__ = ["BoundSweepEntry", "reachability_bound_sweep", "state_space_bound_sweep", "convergence_bound"]


@dataclass(frozen=True)
class BoundSweepEntry:
    """One row of a sweep over the recency bound."""

    bound: int
    verdict: Verdict
    configurations: int
    edges: int

    def as_row(self) -> tuple:
        """The row printed by the benchmark harness."""
        return (self.bound, self.verdict.value, self.configurations, self.edges)


def reachability_bound_sweep(
    system: DMS,
    condition: Query | str,
    bounds: tuple[int, ...] = (0, 1, 2, 3, 4),
    max_depth: int = 6,
    *,
    strategy: str = "bfs",
    heuristic=None,
    retention: str = RETAIN_PARENTS,
    shards: int = 1,
    workers: int = 1,
) -> tuple[BoundSweepEntry, ...]:
    """Reachability verdict and explored state space for increasing bounds.

    ``strategy`` (with its ``heuristic`` for ``"best-first"``) and
    ``retention`` are passed through to the exploration engine; the
    default keeps only parent links, so sweeping large bounds does not
    hold every edge in memory.  ``shards``/``workers`` select the
    sharded engine for each point of the sweep (bit-identical verdicts;
    any-shard truncation reports ``UNKNOWN``, never ``FAILS``).
    """
    rows = []
    for bound in bounds:
        result = query_reachable_bounded(
            system, condition, bound, max_depth=max_depth,
            strategy=strategy, heuristic=heuristic, retention=retention,
            shards=shards, workers=workers,
        )
        rows.append(
            BoundSweepEntry(
                bound=bound,
                verdict=result.reachable,
                configurations=result.configurations_explored,
                edges=result.edges_explored,
            )
        )
    return tuple(rows)


def state_space_bound_sweep(
    system: DMS,
    bounds: tuple[int, ...] = (0, 1, 2, 3),
    max_depth: int = 5,
    *,
    strategy: str = "bfs",
    heuristic=None,
    retention: str = RETAIN_COUNTS,
    shards: int = 1,
    workers: int = 1,
) -> tuple[BoundSweepEntry, ...]:
    """How many configurations/edges are explored as the bound grows (no property).

    Only sizes are reported, so the sweep defaults to the engine's
    ``"counts-only"`` retention: no edge objects are held in memory.
    ``shards``/``workers`` select the sharded engine per point.
    """
    rows = []
    for bound in bounds:
        explorer = RecencyExplorer(
            system, bound, RecencyExplorationLimits(max_depth=max_depth),
            strategy=strategy, heuristic=heuristic, retention=retention,
            shards=shards, workers=workers,
        )
        result = explorer.explore()
        rows.append(
            BoundSweepEntry(
                bound=bound,
                verdict=Verdict.UNKNOWN,
                configurations=result.configuration_count,
                edges=result.edge_count,
            )
        )
    return tuple(rows)


def convergence_bound(
    system: DMS,
    condition: Query | str,
    max_bound: int = 8,
    max_depth: int = 6,
    *,
    strategy: str = "bfs",
    heuristic=None,
    shards: int = 1,
    workers: int = 1,
) -> int | None:
    """The least bound at which the bounded reachability verdict matches the
    unbounded (depth-bounded) verdict.

    Returns ``None`` when no bound up to ``max_bound`` agrees — which, for
    exhaustive exploration depths, indicates the behaviour of interest
    genuinely needs a deeper recency window.  ``shards``/``workers``
    select the sharded engine for every exploration of the scan.
    """
    reference = query_reachable(
        system, condition, max_depth=max_depth, strategy=strategy, heuristic=heuristic,
        shards=shards, workers=workers,
    )
    for bound in range(max_bound + 1):
        bounded = query_reachable_bounded(
            system, condition, bound, max_depth=max_depth, strategy=strategy,
            heuristic=heuristic, shards=shards, workers=workers,
        )
        if bounded.reachable == reference.reachable:
            return bound
    return None
