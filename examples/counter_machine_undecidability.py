"""The undecidability reductions of Theorem 4.1 (Appendix D), executed.

A two-counter Minsky machine is compiled into (i) a DMS with two unary
relations and FOL guards and (ii) a DMS with one binary relation and UCQ
guards.  Control-state reachability of the machine coincides with
propositional reachability of the corresponding ``S_q`` in both
encodings — which is exactly why propositional reachability of DMSs is
undecidable in general, and why the paper turns to recency-bounded
under-approximation.

Run with:  python examples/counter_machine_undecidability.py
"""

from __future__ import annotations

from repro.counter import (
    CounterMachine,
    binary_encoding,
    control_state_reachable,
    state_proposition,
    unary_encoding,
)
from repro.modelcheck import proposition_reachable_bounded


def build_machine() -> CounterMachine:
    """Increment counter 1 twice, transfer it to counter 2, then test for zero."""
    return CounterMachine.create(
        states=["q0", "q1", "loop", "drain", "qf"],
        initial_state="q0",
        counter_count=2,
        instructions=[
            ("q0", "inc", 1, "q1"),
            ("q1", "inc", 1, "loop"),
            ("loop", "dec", 1, "loop"),
            ("loop", "ifz", 1, "drain"),
            ("drain", "ifz", 2, "qf"),
        ],
        name="transfer",
    )


def main() -> None:
    machine = build_machine()
    print(f"Machine {machine.name}: {len(machine.instructions)} instructions, target state qf")
    machine_verdict = control_state_reachable(machine, "qf")
    print(f"  control-state reachability of qf (machine level): {machine_verdict}")

    unary = unary_encoding(machine)
    binary = binary_encoding(machine)
    print(f"\nUnary encoding : schema {unary.schema}")
    print(f"Binary encoding: schema {binary.schema}")

    target = state_proposition("qf")
    unary_result = proposition_reachable_bounded(unary, target, bound=2, max_depth=10)
    binary_result = proposition_reachable_bounded(binary, target, bound=2, max_depth=12)
    print(f"\n  S_qf reachable in the unary-encoding DMS : {unary_result.found} "
          f"({unary_result.configurations_explored} configurations)")
    print(f"  S_qf reachable in the binary-encoding DMS: {binary_result.found} "
          f"({binary_result.configurations_explored} configurations)")
    print(f"\n  all three verdicts agree: {machine_verdict == unary_result.found == binary_result.found}")

    if unary_result.witness is not None:
        print("\n  witnessing DMS run (unary encoding):")
        for step in unary_result.witness.steps:
            print(f"    {step.action.name:20s} -> {step.target.instance.pretty()}")


if __name__ == "__main__":
    main()
