"""Database constraints.

Example 4.3 of the paper shows how FO constraints can be added to a DMS:
the application of an action is blocked whenever the resulting instance
violates one of the constraints.  :class:`ConstraintSet` packages a set of
boolean FOL(R) sentences and checks them against instances; the DMS
semantics module consults it when a constrained system is executed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.database.instance import DatabaseInstance
from repro.errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fol.syntax import Query

__all__ = ["ConstraintSet"]


class ConstraintSet:
    """A finite set of boolean FOL(R) sentences interpreted as constraints.

    Example:
        >>> from repro.fol import parse_query
        >>> from repro.database import Schema, DatabaseInstance, Fact
        >>> schema = Schema.of(("R", 1))
        >>> constraints = ConstraintSet([parse_query("exists u. R(u)")])
        >>> constraints.satisfied_by(DatabaseInstance.of(schema, Fact.of("R", "e1")))
        True
    """

    __slots__ = ("_constraints",)

    def __init__(self, constraints: Iterable["Query"] = ()) -> None:
        constraints = tuple(constraints)
        for constraint in constraints:
            if constraint.free_variables():
                raise QueryError(
                    f"constraint {constraint} must be a sentence (no free variables)"
                )
        self._constraints = constraints

    @classmethod
    def empty(cls) -> "ConstraintSet":
        """The trivially satisfied constraint set."""
        return cls(())

    @property
    def constraints(self) -> tuple:
        """The constraint sentences."""
        return self._constraints

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator["Query"]:
        return iter(self._constraints)

    def __bool__(self) -> bool:
        return bool(self._constraints)

    def satisfied_by(self, instance: DatabaseInstance) -> bool:
        """True when every constraint holds in ``instance``."""
        from repro.fol.evaluator import evaluate_sentence

        return all(evaluate_sentence(constraint, instance) for constraint in self._constraints)

    def violated_by(self, instance: DatabaseInstance) -> tuple:
        """Return the constraints violated by ``instance`` (empty when satisfied)."""
        from repro.fol.evaluator import evaluate_sentence

        return tuple(
            constraint
            for constraint in self._constraints
            if not evaluate_sentence(constraint, instance)
        )

    def add(self, constraint: "Query") -> "ConstraintSet":
        """Return a new set with one more constraint."""
        return ConstraintSet(self._constraints + (constraint,))

    def conjunction(self) -> "Query":
        """The single sentence ``φ_c`` equivalent to the whole set.

        Used by Example 4.3 to reduce constrained model checking to
        unconstrained model checking with ``(∀x. φ_c@x) ⇒ φ``.
        """
        from repro.fol.syntax import And, TrueQuery

        result: "Query" = TrueQuery()
        for constraint in self._constraints:
            result = And(result, constraint)
        return result

    def __repr__(self) -> str:
        return f"ConstraintSet({list(self._constraints)!r})"
