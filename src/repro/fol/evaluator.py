"""Active-domain evaluation of FOL(R) queries.

Implements the semantics of Appendix A of the paper: ``I, σ ⊨ Q``, the
answer set ``ans(Q, I)`` and boolean-query evaluation.  Quantifiers range
over ``adom(I)`` (active-domain semantics), which also matches the
execution-semantics rule that action parameters are substituted with
values from the current active domain.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.database.domain import Value
from repro.database.instance import DatabaseInstance
from repro.database.substitution import Substitution
from repro.errors import QueryError, SubstitutionError
from repro.fol.syntax import (
    And,
    Atom,
    Equals,
    Exists,
    FalseQuery,
    Forall,
    Iff,
    Implies,
    Not,
    Or,
    Query,
    TrueQuery,
)

__all__ = ["satisfies", "answers", "iter_answers", "evaluate_sentence", "QueryEvaluator"]


def satisfies(
    instance: DatabaseInstance, query: Query, sigma: Mapping[str, Value] | None = None
) -> bool:
    """``I, σ ⊨ Q``.

    Args:
        instance: the database instance ``I``.
        query: the FOL(R) query ``Q``.
        sigma: a substitution binding at least ``Free-Vars(Q)``; may be
            omitted for sentences.

    Raises:
        SubstitutionError: if a free variable of ``Q`` is not bound.
    """
    bindings = dict(sigma) if sigma is not None else {}
    missing = query.free_variables() - set(bindings)
    if missing:
        raise SubstitutionError(
            f"free variables {sorted(missing)} of {query} are not bound by {bindings!r}"
        )
    return _eval(query, instance, bindings)


def evaluate_sentence(query: Query, instance: DatabaseInstance) -> bool:
    """Evaluate a boolean query (``I ⊨ Q``)."""
    if not query.is_sentence():
        raise QueryError(f"{query} is not a sentence; use satisfies() with a substitution")
    return _eval(query, instance, {})


def iter_answers(query: Query, instance: DatabaseInstance) -> Iterator[Substitution]:
    """Iterate over ``ans(Q, I)``: all substitutions of ``Free-Vars(Q)`` into
    ``adom(I)`` satisfying ``Q``.

    For a boolean query the iterator yields the empty substitution exactly
    when the query holds (mirroring ``ans(Q, I) = {ε}`` in the paper).
    """
    free = sorted(query.free_variables())
    if not free:
        if _eval(query, instance, {}):
            yield Substitution.empty()
        return
    domain = sorted(instance.active_domain(), key=repr)
    yield from _iter_assignments(query, instance, free, domain, {})


def answers(query: Query, instance: DatabaseInstance) -> frozenset:
    """``ans(Q, I)`` as a frozen set of :class:`Substitution`."""
    return frozenset(iter_answers(query, instance))


def _iter_assignments(
    query: Query,
    instance: DatabaseInstance,
    free: list[str],
    domain: list[Value],
    partial: dict[str, Value],
) -> Iterator[Substitution]:
    if len(partial) == len(free):
        if _eval(query, instance, partial):
            yield Substitution(partial)
        return
    variable = free[len(partial)]
    for value in domain:
        partial[variable] = value
        yield from _iter_assignments(query, instance, free, domain, partial)
    partial.pop(variable, None)


def _eval(query: Query, instance: DatabaseInstance, bindings: dict[str, Value]) -> bool:
    """Recursive evaluation under a (mutable) binding environment."""
    if isinstance(query, TrueQuery):
        return True
    if isinstance(query, FalseQuery):
        return False
    if isinstance(query, Atom):
        values = tuple(_lookup(bindings, arg) for arg in query.arguments)
        return instance.holds(query.relation, *values)
    if isinstance(query, Equals):
        return _lookup(bindings, query.left) == _lookup(bindings, query.right)
    if isinstance(query, Not):
        return not _eval(query.operand, instance, bindings)
    if isinstance(query, And):
        return _eval(query.left, instance, bindings) and _eval(query.right, instance, bindings)
    if isinstance(query, Or):
        return _eval(query.left, instance, bindings) or _eval(query.right, instance, bindings)
    if isinstance(query, Implies):
        return (not _eval(query.left, instance, bindings)) or _eval(
            query.right, instance, bindings
        )
    if isinstance(query, Iff):
        return _eval(query.left, instance, bindings) == _eval(query.right, instance, bindings)
    if isinstance(query, Exists):
        return _eval_exists(query, instance, bindings)
    if isinstance(query, Forall):
        return not _eval_exists(Exists(query.variable, Not(query.body)), instance, bindings)
    raise QueryError(f"unsupported query node {type(query).__name__}")


def _eval_exists(query: Exists, instance: DatabaseInstance, bindings: dict[str, Value]) -> bool:
    saved_present = query.variable in bindings
    saved_value = bindings.get(query.variable)
    try:
        for value in instance.active_domain():
            bindings[query.variable] = value
            if _eval(query.body, instance, bindings):
                return True
        return False
    finally:
        if saved_present:
            bindings[query.variable] = saved_value
        else:
            bindings.pop(query.variable, None)


def _lookup(bindings: Mapping[str, Value], variable: str) -> Value:
    try:
        return bindings[variable]
    except KeyError:
        raise SubstitutionError(f"variable {variable!r} is not bound") from None


class QueryEvaluator:
    """A small façade bundling evaluation entry points for one instance.

    Convenient when many queries are evaluated against the same database
    instance (e.g. when enumerating action successors).
    """

    __slots__ = ("_instance",)

    def __init__(self, instance: DatabaseInstance) -> None:
        self._instance = instance

    @property
    def instance(self) -> DatabaseInstance:
        """The database instance queries are evaluated against."""
        return self._instance

    def satisfies(self, query: Query, sigma: Mapping[str, Value] | None = None) -> bool:
        """``I, σ ⊨ Q`` for the wrapped instance."""
        return satisfies(self._instance, query, sigma)

    def answers(self, query: Query) -> frozenset:
        """``ans(Q, I)`` for the wrapped instance."""
        return answers(query, self._instance)

    def iter_answers(self, query: Query) -> Iterable[Substitution]:
        """Iterator form of :meth:`answers`."""
        return iter_answers(query, self._instance)

    def holds(self, query: Query) -> bool:
        """Evaluate a sentence against the wrapped instance."""
        return evaluate_sentence(query, self._instance)
