"""E7 — Section 6.6: size of the reduction formula phi_valid ∧ ¬⌊psi⌋."""

from repro.harness.experiments import experiment_e7_formula_size
from repro.harness.reporting import print_experiment


def test_e7_formula_size(benchmark, run_once):
    rows = run_once(benchmark, experiment_e7_formula_size)
    print_experiment("E7", "Reduction-formula size vs recency bound", rows)
    sizes = [row["size(reduction)"] for row in rows]
    assert sizes == sorted(sizes) and sizes[0] > 0
